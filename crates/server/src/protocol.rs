//! The ssimd wire protocol: newline-delimited JSON over TCP.
//!
//! Every request is one JSON object on one line; every reply is one JSON
//! object on one line. A request may produce several reply lines (sweeps
//! stream one line per shape before their final line). Replies always
//! carry `"ok"` and echo the request's `"id"` when one was given, so
//! clients can pipeline.
//!
//! Request shapes:
//!
//! ```text
//! {"type":"ping"}
//! {"type":"stats"}
//! {"type":"metrics"}
//! {"type":"shutdown"}
//! {"type":"run","benchmark":"gcc","slices":4,"banks":8,"len":60000,"seed":7}
//! {"type":"run","profile":{...WorkloadProfile...},"slices":2,...}
//! {"type":"sweep","benchmark":"mcf","len":30000,"seed":7}
//! {"type":"market","benchmark":"gcc","utility":"throughput",
//!  "market":"Market2","budget":100.0,"len":30000,"seed":7}
//! {"type":"dc","scenario":{"name":"bursty",...},"seed":7,"mode":"sharing"}
//! ```

use sharing_dc::{BillingMode, Scenario};
use sharing_json::{Json, JsonError};
use sharing_market::{Market, UtilityFn};
use sharing_trace::{Benchmark, WorkloadProfile};
use std::io::{BufRead, Read, Write};

/// Default TCP port (`0xA5` + `2014`, the paper's year).
pub const DEFAULT_PORT: u16 = 42014;

/// Maximum accepted request line length (1 MiB) — bounds memory per
/// connection against hostile input.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// What a `run` job simulates.
#[derive(Clone, Debug, PartialEq)]
pub enum JobWorkload {
    /// One of the calibrated paper benchmarks.
    Benchmark(Benchmark),
    /// An inline workload profile.
    Profile(Box<WorkloadProfile>),
}

/// A single-configuration simulation job.
#[derive(Clone, Debug, PartialEq)]
pub struct RunJob {
    /// The workload.
    pub workload: JobWorkload,
    /// Slice count.
    pub slices: usize,
    /// L2 bank count.
    pub banks: usize,
    /// Trace length.
    pub len: usize,
    /// Trace seed.
    pub seed: u64,
}

/// A full-grid sweep job (72 shapes, streamed).
#[derive(Clone, Debug, PartialEq)]
pub struct SweepJob {
    /// The benchmark to sweep.
    pub benchmark: Benchmark,
    /// Trace length.
    pub len: usize,
    /// Trace seed.
    pub seed: u64,
}

/// A market-evaluation job: sweep the grid, then pick the
/// budget-constrained utility-optimal shape (paper §5.6).
#[derive(Clone, Debug, PartialEq)]
pub struct MarketJob {
    /// The benchmark whose surface is evaluated.
    pub benchmark: Benchmark,
    /// The customer's utility function.
    pub utility: UtilityFn,
    /// The pricing market.
    pub market: Market,
    /// The customer's budget.
    pub budget: f64,
    /// Trace length.
    pub len: usize,
    /// Trace seed.
    pub seed: u64,
}

/// A datacenter-scenario job: run the discrete-event simulator over a
/// full scenario (see `sharing-dc`), in one billing mode or both.
#[derive(Clone, Debug, PartialEq)]
pub struct DcJob {
    /// The scenario to simulate.
    pub scenario: Scenario,
    /// Event seed.
    pub seed: u64,
    /// Billing mode; `None` runs both and reports the comparison.
    pub mode: Option<BillingMode>,
}

/// A parsed request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Server-wide metrics as a JSON snapshot.
    Stats,
    /// Server-wide metrics as Prometheus text exposition.
    Metrics,
    /// Graceful shutdown: drain in-flight jobs, then exit.
    Shutdown,
    /// A single simulation.
    Run(RunJob),
    /// A grid sweep.
    Sweep(SweepJob),
    /// A market evaluation.
    Market(MarketJob),
    /// A datacenter scenario simulation.
    Dc(Box<DcJob>),
}

/// A request plus its optional client-chosen correlation id.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// Echoed verbatim in every reply line for this request.
    pub id: Option<u64>,
    /// The request itself.
    pub req: Request,
}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, JsonError> {
    v.get(key)
        .ok_or_else(|| JsonError(format!("request missing field `{key}`")))
}

fn num_field<T: sharing_json::FromJson>(v: &Json, key: &str, default: T) -> Result<T, JsonError> {
    match v.get(key) {
        Some(x) => T::from_json(x),
        None => Ok(default),
    }
}

fn parse_benchmark(v: &Json) -> Result<Benchmark, JsonError> {
    let name = field(v, "benchmark")?
        .as_str()
        .ok_or_else(|| JsonError("`benchmark` must be a string".into()))?;
    Benchmark::from_name(name).ok_or_else(|| JsonError(format!("unknown benchmark `{name}`")))
}

fn parse_utility(name: &str) -> Result<UtilityFn, JsonError> {
    match name.to_ascii_lowercase().as_str() {
        "throughput" | "utility1" => Ok(UtilityFn::Throughput),
        "balanced" | "utility2" => Ok(UtilityFn::Balanced),
        "latency" | "latencycritical" | "latency-critical" | "utility3" => {
            Ok(UtilityFn::LatencyCritical)
        }
        other => Err(JsonError(format!("unknown utility `{other}`"))),
    }
}

fn parse_market(name: &str) -> Result<Market, JsonError> {
    Market::ALL
        .into_iter()
        .find(|m| m.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| JsonError(format!("unknown market `{name}`")))
}

impl Envelope {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first problem; the server
    /// turns this into an `"ok": false` reply rather than dropping the
    /// connection.
    pub fn parse(line: &str) -> Result<Envelope, JsonError> {
        let v = Json::parse(line)?;
        let id = match v.get("id") {
            Some(x) => Some(u64::from_json(x).map_err(|_| JsonError("`id` must be a u64".into()))?),
            None => None,
        };
        let ty = field(&v, "type")?
            .as_str()
            .ok_or_else(|| JsonError("`type` must be a string".into()))?;
        let req = match ty {
            "ping" => Request::Ping,
            "stats" => Request::Stats,
            "metrics" => Request::Metrics,
            "shutdown" => Request::Shutdown,
            "run" => {
                let workload = if let Some(p) = v.get("profile") {
                    JobWorkload::Profile(Box::new(WorkloadProfile::from_json(p)?))
                } else {
                    JobWorkload::Benchmark(parse_benchmark(&v)?)
                };
                Request::Run(RunJob {
                    workload,
                    slices: num_field(&v, "slices", 1usize)?,
                    banks: num_field(&v, "banks", 2usize)?,
                    len: num_field(&v, "len", 60_000usize)?,
                    seed: num_field(&v, "seed", 0xA5_2014u64)?,
                })
            }
            "sweep" => Request::Sweep(SweepJob {
                benchmark: parse_benchmark(&v)?,
                len: num_field(&v, "len", 30_000usize)?,
                seed: num_field(&v, "seed", 0xA5_2014u64)?,
            }),
            "market" => Request::Market(MarketJob {
                benchmark: parse_benchmark(&v)?,
                utility: parse_utility(
                    field(&v, "utility")?
                        .as_str()
                        .ok_or_else(|| JsonError("`utility` must be a string".into()))?,
                )?,
                market: parse_market(
                    field(&v, "market")?
                        .as_str()
                        .ok_or_else(|| JsonError("`market` must be a string".into()))?,
                )?,
                budget: num_field(&v, "budget", 100.0f64)?,
                len: num_field(&v, "len", 30_000usize)?,
                seed: num_field(&v, "seed", 0xA5_2014u64)?,
            }),
            "dc" => {
                let scenario_json = field(&v, "scenario")?;
                if scenario_json.get("name").is_none() {
                    return Err(JsonError("`scenario` must carry a `name`".into()));
                }
                let scenario = Scenario::from_json(scenario_json)?;
                scenario.validate().map_err(JsonError)?;
                let mode = match v.get("mode") {
                    Some(m) => {
                        let name = m
                            .as_str()
                            .ok_or_else(|| JsonError("`mode` must be a string".into()))?;
                        Some(BillingMode::parse(name).map_err(JsonError)?)
                    }
                    None => None,
                };
                Request::Dc(Box::new(DcJob {
                    scenario,
                    seed: num_field(&v, "seed", 0xA5_2014u64)?,
                    mode,
                }))
            }
            other => return Err(JsonError(format!("unknown request type `{other}`"))),
        };
        Ok(Envelope { id, req })
    }

    /// Serializes the envelope back to its wire line (the client side of
    /// [`Envelope::parse`]).
    #[must_use]
    pub fn to_line(&self) -> String {
        let mut pairs: Vec<(&str, Json)> = Vec::new();
        if let Some(id) = self.id {
            pairs.push(("id", Json::Int(i128::from(id))));
        }
        match &self.req {
            Request::Ping => pairs.push(("type", Json::Str("ping".into()))),
            Request::Stats => pairs.push(("type", Json::Str("stats".into()))),
            Request::Metrics => pairs.push(("type", Json::Str("metrics".into()))),
            Request::Shutdown => pairs.push(("type", Json::Str("shutdown".into()))),
            Request::Run(job) => {
                pairs.push(("type", Json::Str("run".into())));
                match &job.workload {
                    JobWorkload::Benchmark(b) => {
                        pairs.push(("benchmark", Json::Str(b.name().into())));
                    }
                    JobWorkload::Profile(p) => pairs.push(("profile", p.to_json())),
                }
                pairs.push(("slices", Json::Int(job.slices as i128)));
                pairs.push(("banks", Json::Int(job.banks as i128)));
                pairs.push(("len", Json::Int(job.len as i128)));
                pairs.push(("seed", Json::Int(i128::from(job.seed))));
            }
            Request::Sweep(job) => {
                pairs.push(("type", Json::Str("sweep".into())));
                pairs.push(("benchmark", Json::Str(job.benchmark.name().into())));
                pairs.push(("len", Json::Int(job.len as i128)));
                pairs.push(("seed", Json::Int(i128::from(job.seed))));
            }
            Request::Market(job) => {
                pairs.push(("type", Json::Str("market".into())));
                pairs.push(("benchmark", Json::Str(job.benchmark.name().into())));
                pairs.push(("utility", Json::Str(job.utility.name().into())));
                pairs.push(("market", Json::Str(job.market.name.into())));
                pairs.push(("budget", Json::Float(job.budget)));
                pairs.push(("len", Json::Int(job.len as i128)));
                pairs.push(("seed", Json::Int(i128::from(job.seed))));
            }
            Request::Dc(job) => {
                pairs.push(("type", Json::Str("dc".into())));
                pairs.push(("scenario", job.scenario.to_json()));
                pairs.push(("seed", Json::Int(i128::from(job.seed))));
                if let Some(mode) = job.mode {
                    pairs.push(("mode", Json::Str(mode.name().into())));
                }
            }
        }
        Json::obj(pairs).to_string()
    }
}

impl RunJob {
    /// The canonical cache key for this job: a compact JSON string with a
    /// fixed field order, independent of how the request spelled it.
    /// Identical keys mean identical simulations (trace generation and the
    /// simulator are deterministic), so cached payloads replay
    /// byte-identically.
    #[must_use]
    pub fn cache_key(&self) -> String {
        let workload = match &self.workload {
            JobWorkload::Benchmark(b) => Json::Str(b.name().into()),
            JobWorkload::Profile(p) => p.to_json(),
        };
        Json::obj(vec![
            ("workload", workload),
            ("slices", Json::Int(self.slices as i128)),
            ("banks", Json::Int(self.banks as i128)),
            ("len", Json::Int(self.len as i128)),
            ("seed", Json::Int(i128::from(self.seed))),
        ])
        .to_string()
    }
}

impl DcJob {
    /// The canonical cache key for this job (see [`RunJob::cache_key`]):
    /// the scenario's canonical JSON plus seed and mode. The simulator is
    /// fully deterministic in `(scenario, seed, mode)`, so identical keys
    /// replay byte-identical results.
    #[must_use]
    pub fn cache_key(&self) -> String {
        let mode = match self.mode {
            Some(m) => Json::Str(m.name().into()),
            None => Json::Str("both".into()),
        };
        Json::obj(vec![
            ("dc", self.scenario.to_json()),
            ("seed", Json::Int(i128::from(self.seed))),
            ("mode", mode),
        ])
        .to_string()
    }
}

/// Reads one protocol line. Returns `Ok(None)` on a clean EOF.
///
/// # Errors
///
/// I/O errors propagate; an over-long line is reported as
/// [`std::io::ErrorKind::InvalidData`].
pub fn read_line(reader: &mut impl BufRead) -> std::io::Result<Option<String>> {
    let mut line = String::new();
    let n = reader
        .by_ref()
        .take(MAX_LINE_BYTES as u64 + 1)
        .read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if n > MAX_LINE_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "request line exceeds 1 MiB",
        ));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

/// Writes one protocol line and flushes it.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_line(writer: &mut impl Write, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Builds an error reply line.
#[must_use]
pub fn error_line(id: Option<u64>, message: &str) -> String {
    let mut pairs: Vec<(&str, Json)> = Vec::new();
    if let Some(id) = id {
        pairs.push(("id", Json::Int(i128::from(id))));
    }
    pairs.push(("ok", Json::Bool(false)));
    pairs.push(("error", Json::Str(message.into())));
    Json::obj(pairs).to_string()
}

use sharing_json::{FromJson, ToJson};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_round_trips() {
        let env = Envelope {
            id: Some(7),
            req: Request::Run(RunJob {
                workload: JobWorkload::Benchmark(Benchmark::Gcc),
                slices: 4,
                banks: 8,
                len: 1000,
                seed: 42,
            }),
        };
        let back = Envelope::parse(&env.to_line()).unwrap();
        assert_eq!(env, back);
    }

    #[test]
    fn sweep_and_market_round_trip() {
        for env in [
            Envelope {
                id: None,
                req: Request::Sweep(SweepJob {
                    benchmark: Benchmark::Mcf,
                    len: 500,
                    seed: 1,
                }),
            },
            Envelope {
                id: Some(3),
                req: Request::Market(MarketJob {
                    benchmark: Benchmark::Astar,
                    utility: UtilityFn::Balanced,
                    market: Market::MARKET3,
                    budget: 64.0,
                    len: 500,
                    seed: 1,
                }),
            },
            Envelope {
                id: None,
                req: Request::Ping,
            },
            Envelope {
                id: Some(0),
                req: Request::Stats,
            },
            Envelope {
                id: Some(12),
                req: Request::Metrics,
            },
            Envelope {
                id: None,
                req: Request::Shutdown,
            },
        ] {
            let back = Envelope::parse(&env.to_line()).unwrap();
            assert_eq!(env, back);
        }
    }

    #[test]
    fn profile_workload_round_trips() {
        let profile = WorkloadProfile::builder("svc")
            .chains(3)
            .mem_frac(0.2)
            .build();
        let env = Envelope {
            id: None,
            req: Request::Run(RunJob {
                workload: JobWorkload::Profile(Box::new(profile)),
                slices: 2,
                banks: 2,
                len: 700,
                seed: 9,
            }),
        };
        let back = Envelope::parse(&env.to_line()).unwrap();
        assert_eq!(env, back);
    }

    #[test]
    fn defaults_fill_missing_fields() {
        let env = Envelope::parse(r#"{"type":"run","benchmark":"gcc"}"#).unwrap();
        match env.req {
            Request::Run(job) => {
                assert_eq!(job.slices, 1);
                assert_eq!(job.banks, 2);
                assert_eq!(job.len, 60_000);
                assert_eq!(job.seed, 0xA5_2014);
            }
            other => panic!("expected run, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(Envelope::parse("not json").is_err());
        assert!(Envelope::parse(r#"{"no":"type"}"#).is_err());
        assert!(Envelope::parse(r#"{"type":"explode"}"#).is_err());
        assert!(Envelope::parse(r#"{"type":"run"}"#).is_err(), "no workload");
        assert!(Envelope::parse(r#"{"type":"run","benchmark":"doom"}"#).is_err());
        assert!(Envelope::parse(
            r#"{"type":"market","benchmark":"gcc","utility":"x","market":"Market1"}"#
        )
        .is_err());
    }

    #[test]
    fn cache_key_ignores_request_id() {
        let job = RunJob {
            workload: JobWorkload::Benchmark(Benchmark::Gcc),
            slices: 1,
            banks: 2,
            len: 100,
            seed: 5,
        };
        let a = Envelope {
            id: Some(1),
            req: Request::Run(job.clone()),
        };
        let b = Envelope {
            id: Some(99),
            req: Request::Run(job.clone()),
        };
        match (
            Envelope::parse(&a.to_line()).unwrap().req,
            Envelope::parse(&b.to_line()).unwrap().req,
        ) {
            (Request::Run(x), Request::Run(y)) => {
                assert_eq!(x.cache_key(), y.cache_key());
                assert_eq!(x.cache_key(), job.cache_key());
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn dc_round_trips_and_validates() {
        for mode in [None, Some(BillingMode::Sharing), Some(BillingMode::Fixed)] {
            let env = Envelope {
                id: Some(11),
                req: Request::Dc(Box::new(DcJob {
                    scenario: Scenario::example_bursty(),
                    seed: 99,
                    mode,
                })),
            };
            let back = Envelope::parse(&env.to_line()).unwrap();
            assert_eq!(env, back);
        }
        // A scenario without a name is rejected, as is a bad mode.
        assert!(Envelope::parse(r#"{"type":"dc","scenario":{}}"#).is_err());
        assert!(Envelope::parse(r#"{"type":"dc"}"#).is_err());
        let line = Envelope {
            id: None,
            req: Request::Dc(Box::new(DcJob {
                scenario: Scenario::example_bursty(),
                seed: 1,
                mode: None,
            })),
        }
        .to_line()
        .replace(r#""seed":1"#, r#""seed":1,"mode":"weird""#);
        assert!(Envelope::parse(&line).is_err());
    }

    #[test]
    fn dc_cache_key_distinguishes_seed_and_mode() {
        let base = DcJob {
            scenario: Scenario::example_bursty(),
            seed: 7,
            mode: None,
        };
        let other_seed = DcJob {
            seed: 8,
            ..base.clone()
        };
        let other_mode = DcJob {
            mode: Some(BillingMode::Fixed),
            ..base.clone()
        };
        assert_ne!(base.cache_key(), other_seed.cache_key());
        assert_ne!(base.cache_key(), other_mode.cache_key());
        assert_eq!(base.cache_key(), base.clone().cache_key());
    }

    #[test]
    fn error_line_is_parseable_json() {
        let line = error_line(Some(5), "queue full");
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("id").and_then(Json::as_int), Some(5));
    }
}
