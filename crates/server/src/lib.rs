//! ssimd — simulation-as-a-service for the Sharing Architecture.
//!
//! The sweep and market studies behind the paper's figures each run the
//! simulator hundreds of times over the same `(benchmark, shape, trace)`
//! grid. This crate turns the simulator into a long-lived daemon so that
//! cost is paid once and shared:
//!
//! * [`protocol`] — versioned newline-delimited JSON over TCP: `run`,
//!   `sweep`, `market`, `dc` (datacenter scenarios via `sharing-dc`),
//!   `stats`, `metrics` (Prometheus text exposition), `ping`, `hello`
//!   (version negotiation), `shutdown`; failures carry typed
//!   [`protocol::ErrorCode`]s;
//! * [`queue`] — a bounded job queue with non-blocking admission control
//!   (a full queue answers with an explicit backpressure reply);
//! * [`server`] — the daemon: listener, per-connection threads, a fixed
//!   worker pool, and an optional HTTP/1.1 front door
//!   (`ServerConfig::http_addr`) serving `GET /health` / `GET /metrics`
//!   / `GET /status` and `POST /jobs` + `GET /jobs/<id>` polling, built
//!   on `sharing-http`;
//! * [`cache`] — a result cache keyed by the canonical job JSON; hits
//!   replay the exact bytes of the fresh run (the simulator and trace
//!   generation are deterministic), and it can persist to a plain file
//!   across restarts (`ServerConfig::cache_path`);
//! * [`metrics`] — queue depth, cache hit rate, worker utilization,
//!   per-kind completion counters, and p50/p99 queue-wait / execute /
//!   end-to-end latency, served as JSON by `stats` and as Prometheus
//!   text by `metrics`; per-job wall-clock spans land in a Chrome trace
//!   written at shutdown when `ServerConfig::trace_path` is set;
//! * [`client`] — a blocking client used by `ssim submit` and the tests;
//!   all job kinds go through one [`Client::submit`] door;
//! * [`dispatch`] — coordinator mode: `ServerConfig::remote_workers`
//!   turns the daemon into a front-end that fans jobs out to remote
//!   worker daemons with health pings, per-job timeouts, and bounded
//!   retry/re-queue, while results stay byte-identical to single-node.
//!
//! # Example
//!
//! ```
//! use sharing_server::protocol::{Job, JobWorkload, RunJob};
//! use sharing_server::{Client, Server, ServerConfig};
//! use sharing_trace::Benchmark;
//!
//! let handle = Server::start(ServerConfig {
//!     addr: "127.0.0.1:0".into(), // ephemeral port
//!     workers: 2,
//!     queue_capacity: 8,
//!     cache_capacity: 64,
//!     ..ServerConfig::default()
//! })?;
//! let mut client = Client::connect(handle.local_addr())?;
//! assert_eq!(client.hello()?, sharing_server::PROTO_VERSION);
//! let reply = client.submit(Job::Run(RunJob {
//!     workload: JobWorkload::Benchmark(Benchmark::Gcc),
//!     slices: 2,
//!     banks: 2,
//!     len: 400,
//!     seed: 7,
//! }))?;
//! assert_eq!(reply.get("ok").and_then(|v| v.as_bool()), Some(true));
//! client.shutdown()?;
//! handle.join();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod dispatch;
pub mod exec;
mod http;
mod jobs;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;

pub use cache::ResultCache;
pub use client::Client;
pub use dispatch::{DispatchOpts, WorkerPool};
pub use metrics::{JobClass, Metrics};
pub use protocol::{
    DcJob, Envelope, ErrorCode, Job, JobWorkload, MarketJob, Request, RunJob, ServerError,
    SweepJob, DEFAULT_PORT, MIN_PROTO, PROTO_VERSION,
};
pub use queue::{JobQueue, PushError};
pub use server::{Server, ServerConfig, ServerHandle};
