//! `ssimd` — the Sharing Architecture simulation daemon.
//!
//! ```text
//! ssimd [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
//!       [--cache-file PATH] [--trace-out PATH]
//!       [--http HOST:PORT] [--pidfile PATH]
//!       [--worker HOST:PORT]... [--retries N] [--job-timeout-ms N]
//! ```
//!
//! With one or more `--worker` flags the daemon runs as a coordinator:
//! jobs fan out to those remote ssimd workers (health pings, bounded
//! retry, byte-identical results) instead of the local pool.
//!
//! Runs until a client sends `{"type":"shutdown"}` (e.g. via
//! `ssim submit --shutdown`) or the process receives SIGTERM/SIGINT,
//! either of which triggers the same graceful drain.

use sharing_http::{install_termination_handler, termination_requested, Pidfile};
use sharing_server::{Server, ServerConfig};
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> String {
    format!(
        "ssimd — simulation-as-a-service daemon

USAGE:
    ssimd [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
          [--cache-file PATH] [--trace-out PATH]
          [--http HOST:PORT] [--pidfile PATH]
          [--worker HOST:PORT]... [--retries N] [--job-timeout-ms N]

Repeat `--worker` to run as a coordinator fanning jobs out to remote
ssimd workers with health pings and bounded retry; results stay
byte-identical to single-node (see DESIGN.md §8).

DEFAULTS:
    --addr 127.0.0.1:{}   --workers <cores, max 8>   --queue 64   --cache 1024

With `--cache-file`, the result cache is reloaded from PATH on start and
saved back on graceful shutdown, so results survive restarts.

With `--trace-out`, a Chrome trace of every executed job (one wall-clock
span per job, per worker, with queue-wait/execute timings) is written to
PATH on graceful shutdown; open it in Perfetto or chrome://tracing.
A PATH ending in `.jsonl` streams spans through a bounded-buffer writer
instead (crash-safe: every complete line survives a SIGKILL; re-wrap
with `ssim trace-pack`). Jobs submitted with a `trace` id on their
envelope (`ssim submit --trace ID`) additionally stream their spans back
to the submitting client and, in coordinator mode, merge dispatch spans
and relayed worker-execution spans into the one trace under that id.

With `--http`, an HTTP/1.1 front door binds alongside the TCP listener:
GET /health (200, or 503 while draining), GET /metrics (Prometheus
text), GET /status (JSON snapshot), POST /jobs + GET /jobs/<id>
(submit and poll; `/jobs/<id>/raw` returns the exact TCP reply bytes).

With `--pidfile`, the daemon writes its pid to PATH at startup (failing
if another live ssimd holds it) and removes it on exit. SIGTERM and
SIGINT trigger a graceful drain: admission closes, in-flight jobs
finish, the cache and trace persist, then the process exits.

The daemon speaks newline-delimited JSON; see `ssim submit --help` or the
sharing-server crate docs for the request shapes.",
        sharing_server::DEFAULT_PORT
    )
}

fn parse_args(args: &[String]) -> Result<(ServerConfig, Option<String>), String> {
    let mut cfg = ServerConfig::default();
    let mut pidfile = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag `{name}` needs a value"))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--workers" => {
                cfg.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers: not a number".to_string())?;
            }
            "--queue" => {
                cfg.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|_| "--queue: not a number".to_string())?;
            }
            "--cache" => {
                cfg.cache_capacity = value("--cache")?
                    .parse()
                    .map_err(|_| "--cache: not a number".to_string())?;
            }
            "--cache-file" => cfg.cache_path = Some(value("--cache-file")?),
            "--trace-out" => cfg.trace_path = Some(value("--trace-out")?),
            "--http" => cfg.http_addr = Some(value("--http")?),
            "--pidfile" => pidfile = Some(value("--pidfile")?),
            "--worker" => cfg.remote_workers.push(value("--worker")?),
            "--retries" => {
                cfg.dispatch_retries = value("--retries")?
                    .parse()
                    .map_err(|_| "--retries: not a number".to_string())?;
            }
            "--job-timeout-ms" => {
                cfg.job_timeout_ms = value("--job-timeout-ms")?
                    .parse()
                    .map_err(|_| "--job-timeout-ms: not a number".to_string())?;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok((cfg, pidfile))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cfg, pidfile_path) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(msg) if msg.is_empty() => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("ssimd: {msg}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    // The pidfile is claimed before the sockets bind so two daemons
    // racing on the same pidfile cannot both come up; its guard removes
    // the file when `main` returns.
    let _pidfile: Option<Pidfile> = match pidfile_path {
        Some(path) => match Pidfile::create(&path) {
            Ok(guard) => Some(guard),
            Err(e) => {
                eprintln!("ssimd: pidfile {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    if let Err(e) = install_termination_handler() {
        eprintln!("ssimd: cannot install signal handlers: {e}");
        return ExitCode::FAILURE;
    }
    match Server::start(cfg) {
        Ok(handle) => {
            eprintln!(
                "ssimd: listening on {} (send {{\"type\":\"shutdown\"}} to stop)",
                handle.local_addr()
            );
            if let Some(http) = handle.http_addr() {
                eprintln!("ssimd: http listening on {http}");
            }
            // Poll rather than block in join(): a client `shutdown`
            // flips is_stopped(), SIGTERM/SIGINT flips the termination
            // flag, and either way the same graceful drain runs.
            while !handle.is_stopped() && !termination_requested() {
                std::thread::sleep(Duration::from_millis(100));
            }
            if termination_requested() {
                eprintln!("ssimd: termination signal received, draining");
            }
            handle.shutdown();
            handle.join();
            eprintln!("ssimd: drained and stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ssimd: bind failed: {e}");
            ExitCode::FAILURE
        }
    }
}
