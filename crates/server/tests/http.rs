//! End-to-end tests of the ssimd HTTP front door: route behavior,
//! byte-identity with the TCP protocol, and health during a drain.

use sharing_http::request;
use sharing_json::Json;
use sharing_server::{
    Client, Envelope, Job, Request, Server, ServerConfig, ServerHandle, PROTO_VERSION,
};
use sharing_trace::Benchmark;

fn gcc_run(slices: usize, banks: usize, len: usize, seed: u64) -> Job {
    Job::Run(sharing_server::RunJob {
        workload: sharing_server::JobWorkload::Benchmark(Benchmark::Gcc),
        slices,
        banks,
        len,
        seed,
    })
}

fn start(workers: usize, queue: usize, cache: usize) -> ServerHandle {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_capacity: queue,
        cache_capacity: cache,
        http_addr: Some("127.0.0.1:0".into()),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral ports")
}

fn http_addr(handle: &ServerHandle) -> String {
    handle.http_addr().expect("http configured").to_string()
}

fn get(addr: &str, path: &str) -> (u16, String) {
    let (status, body) = request(addr, "GET", path, None).expect("http get");
    (status, String::from_utf8_lossy(&body).into_owned())
}

/// Submits one envelope over HTTP and polls until done; returns the raw
/// reply bytes from `/jobs/<id>/raw`.
fn http_job_raw(addr: &str, env: &Envelope) -> String {
    let (status, body) = request(addr, "POST", "/jobs", Some(env.to_line().as_bytes())).unwrap();
    let body = String::from_utf8_lossy(&body).into_owned();
    assert_eq!(status, 202, "{body}");
    let accepted = Json::parse(&body).unwrap();
    let id = accepted.get("id").and_then(Json::as_int).unwrap();
    let poll = format!("/jobs/{id}");
    for _ in 0..2000 {
        let (status, body) = get(addr, &poll);
        assert_eq!(status, 200, "{body}");
        let v = Json::parse(&body).unwrap();
        if v.get("status").and_then(Json::as_str) == Some("done") {
            let (status, raw) = get(addr, &format!("/jobs/{id}/raw"));
            assert_eq!(status, 200, "{raw}");
            return raw;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!("job {id} never finished");
}

fn job_envelope(id: Option<u64>, job: Job) -> Envelope {
    Envelope {
        id,
        proto: Some(PROTO_VERSION),
        trace: None,
        req: Request::Job(job),
    }
}

#[test]
fn health_metrics_status_and_error_mapping() {
    let handle = start(1, 4, 16);
    let addr = http_addr(&handle);

    let (status, body) = get(&addr, "/health");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"ok\":true"), "{body}");

    // One completed job so the latency histograms have a sample.
    let mut c = Client::connect(handle.local_addr()).unwrap();
    let reply = c.submit(gcc_run(1, 2, 400, 7)).unwrap();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));

    // The reply line is written before completion metrics are recorded,
    // so give the worker a beat to finish its accounting.
    let mut text = String::new();
    for _ in 0..500 {
        let (status, t) = get(&addr, "/metrics");
        assert_eq!(status, 200);
        text = t;
        if text.contains("ssimd_latency_us_count 1") {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert!(
        text.contains("# TYPE ssimd_queue_wait_us histogram"),
        "{text}"
    );
    assert!(
        text.contains("ssimd_exec_us_bucket{le=\"+Inf\"} 1"),
        "{text}"
    );
    assert!(text.contains("ssimd_latency_us_count 1"), "{text}");
    assert!(
        text.contains("ssimd_jobs_completed_total{kind=\"simulate\"} 1"),
        "{text}"
    );

    let (status, body) = get(&addr, "/status");
    assert_eq!(status, 200);
    let v = Json::parse(&body).unwrap();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(v.get("draining").and_then(Json::as_bool), Some(false));
    assert_eq!(
        v.get("stats")
            .and_then(|s| s.get("jobs_completed"))
            .and_then(Json::as_int),
        Some(1)
    );

    // Route-level mapping: unknown path, wrong method, bad body.
    let (status, _) = get(&addr, "/nope");
    assert_eq!(status, 404);
    let (status, _) = request(&addr, "POST", "/health", Some(b"{}")).unwrap();
    assert_eq!(status, 405);
    let (status, body) = request(&addr, "POST", "/jobs", Some(b"not json")).unwrap();
    assert_eq!(status, 400, "{}", String::from_utf8_lossy(&body));
    // Control requests have their own routes; posting one is a 400.
    let (status, body) = request(&addr, "POST", "/jobs", Some(b"{\"type\":\"ping\"}")).unwrap();
    assert_eq!(status, 400, "{}", String::from_utf8_lossy(&body));
    // Polling nonsense ids is a 404, not a panic.
    let (status, _) = get(&addr, "/jobs/notanumber");
    assert_eq!(status, 404);
    let (status, _) = get(&addr, "/jobs/99999");
    assert_eq!(status, 404);

    handle.stop();
}

#[test]
fn http_run_job_bytes_match_tcp() {
    // cache_capacity 0: both submissions execute fresh, so any
    // difference between the two paths would show up in the bytes.
    let handle = start(2, 8, 0);
    let addr = http_addr(&handle);
    let env = job_envelope(Some(9), gcc_run(2, 4, 600, 11));

    let mut c = Client::connect(handle.local_addr()).unwrap();
    c.send(&env).unwrap();
    let tcp_line = c.recv_line().unwrap();

    let raw = http_job_raw(&addr, &env);
    assert_eq!(raw, format!("{tcp_line}\n"));

    handle.stop();
}

#[test]
fn http_sweep_stream_bytes_match_tcp() {
    let handle = start(2, 8, 0);
    let addr = http_addr(&handle);
    let env = job_envelope(
        None,
        Job::Sweep(sharing_server::SweepJob {
            benchmark: Benchmark::Mcf,
            len: 200,
            seed: 3,
        }),
    );

    // 72 grid points plus the sweep_done line.
    let mut c = Client::connect(handle.local_addr()).unwrap();
    c.send(&env).unwrap();
    let mut tcp_lines = Vec::with_capacity(73);
    for _ in 0..73 {
        tcp_lines.push(c.recv_line().unwrap());
    }

    let raw = http_job_raw(&addr, &env);
    let mut expected = tcp_lines.join("\n");
    expected.push('\n');
    assert_eq!(raw, expected);

    handle.stop();
}

#[test]
fn health_answers_503_while_draining_and_jobs_still_finish() {
    let handle = start(1, 4, 0);
    let addr = http_addr(&handle);

    // A slow job (~1s debug) occupies the single worker.
    let mut c = Client::connect(handle.local_addr()).unwrap();
    let submitter = std::thread::spawn(move || c.submit(gcc_run(1, 2, 400_000, 5)).unwrap());
    // Wait until the job is actually admitted before starting the drain.
    for _ in 0..500 {
        let (_, body) = get(&addr, "/status");
        let v = Json::parse(&body).unwrap();
        if v.get("stats")
            .and_then(|s| s.get("jobs_submitted"))
            .and_then(Json::as_int)
            == Some(1)
        {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    let mut saw_503 = false;
    std::thread::scope(|scope| {
        scope.spawn(|| handle.shutdown());
        for _ in 0..2000 {
            let Ok((status, _)) = request(&addr, "GET", "/health", None) else {
                break; // drain finished and the front door closed
            };
            if status == 503 {
                saw_503 = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    });
    assert!(saw_503, "health never reported draining");

    // The in-flight job finished normally despite the drain.
    let reply = submitter.join().unwrap();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));

    // Once drained, the front door is down.
    assert!(request(&addr, "GET", "/health", None).is_err());
    handle.join();
}
