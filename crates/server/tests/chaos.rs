//! Chaos-replay test: a fixed-seed fault plan over a real
//! coordinator/worker fleet must inject the identical fault schedule
//! and produce byte-identical results, run after run — and both must
//! match a fault-free baseline.
//!
//! Everything lives in one `#[test]` because the chaos handle is
//! process-global; parallel tests in this binary would share it.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use sharing_chaos::{hooks, FaultKind, FaultPlan, FaultRule};
use sharing_json::Json;
use sharing_server::{Server, ServerConfig, ServerHandle};

fn daemon() -> ServerHandle {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 256,
        ..ServerConfig::default()
    })
    .expect("bind worker daemon")
}

fn coordinator(worker_addrs: Vec<String>) -> ServerHandle {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 256,
        remote_workers: worker_addrs,
        ping_interval_ms: 100,
        ..ServerConfig::default()
    })
    .expect("bind coordinator")
}

const SWEEP_REQ: &[u8] =
    b"{\"id\":1,\"type\":\"sweep\",\"benchmark\":\"gcc\",\"len\":2000,\"seed\":9}\n";

/// Streams one sweep over a raw socket and returns the reply lines
/// verbatim (72 `sweep_point`s then `sweep_done` on success).
fn raw_sweep(addr: std::net::SocketAddr) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(SWEEP_REQ).expect("send sweep");
    let mut reader = BufReader::new(stream);
    let mut lines = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read reply") == 0 {
            panic!("connection closed mid-sweep after {} lines", lines.len());
        }
        let line = line.trim_end().to_string();
        let v = Json::parse(&line).expect("reply is JSON");
        let ty = v.get("type").and_then(Json::as_str).map(str::to_string);
        lines.push(line);
        match ty.as_deref() {
            Some("sweep_point") => {}
            Some("sweep_done") => return lines,
            other => panic!("unexpected reply type {other:?}: {}", lines.last().unwrap()),
        }
    }
}

#[test]
fn fixed_seed_fault_schedule_and_results_replay_byte_identically() {
    let w1 = daemon();
    let w2 = daemon();
    let addrs = vec![w1.local_addr().to_string(), w2.local_addr().to_string()];

    // Fault-free baseline over a fresh coordinator (empty result cache,
    // so every point dispatches and every `cached` flag is false).
    hooks().disarm();
    let coord = coordinator(addrs.clone());
    let reference = raw_sweep(coord.local_addr());
    coord.stop();
    assert_eq!(reference.len(), 73, "72 points + sweep_done");

    // Every 5th dispatch exchange tears the worker connection down.
    // The injection positions depend only on the matching-call count,
    // so two runs over the same workload replay the same schedule.
    let plan = FaultPlan::new(2014).with_rule(FaultRule::nth("*", FaultKind::DropConn, 5));
    let run_armed = || {
        hooks().arm(plan.clone());
        let coord = coordinator(addrs.clone());
        let lines = raw_sweep(coord.local_addr());
        coord.stop();
        let (injected, schedule) = (hooks().injected(), hooks().schedule_lines());
        hooks().disarm();
        (lines, injected, schedule)
    };
    let (lines_a, injected_a, schedule_a) = run_armed();
    let (lines_b, injected_b, schedule_b) = run_armed();

    assert!(injected_a >= 1, "the plan must actually fire");
    assert_eq!(
        injected_a, injected_b,
        "same plan, same workload, same injection count"
    );
    assert_eq!(
        schedule_a, schedule_b,
        "fault schedules must diff byte-identically"
    );
    assert_eq!(
        lines_a, lines_b,
        "replayed results must not differ in a single byte"
    );
    assert_eq!(
        lines_a, reference,
        "injected faults must never change what the client sees"
    );

    w1.stop();
    w2.stop();
}
