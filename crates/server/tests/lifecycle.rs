//! Daemon lifecycle tests against the real `ssimd` binary: pidfile
//! create/remove, SIGTERM graceful drain, and cache-file integrity when
//! a drain is killed halfway.

use sharing_http::request;
use sharing_server::ResultCache;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn unique_path(stem: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("ssimd-test-{}-{stem}-{n}", std::process::id()))
}

/// Spawns `ssimd` with the given extra flags and returns the child plus
/// the TCP and HTTP addresses parsed from its startup log.
fn spawn_daemon(extra: &[&str]) -> (Child, String, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ssimd"));
    cmd.args([
        "--addr",
        "127.0.0.1:0",
        "--http",
        "127.0.0.1:0",
        "--workers",
        "1",
    ])
    .args(extra)
    .stdout(Stdio::null())
    .stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn ssimd");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut reader = BufReader::new(stderr);
    let mut tcp = None;
    let mut http = None;
    while tcp.is_none() || http.is_none() {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read daemon stderr");
        assert_ne!(n, 0, "daemon exited before announcing its addresses");
        if let Some(rest) = line.strip_prefix("ssimd: http listening on ") {
            http = Some(rest.trim().to_string());
        } else if let Some(rest) = line.strip_prefix("ssimd: listening on ") {
            tcp = Some(rest.split_whitespace().next().unwrap().to_string());
        }
    }
    // Keep draining stderr so the daemon never blocks on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while reader.read_line(&mut sink).is_ok_and(|n| n > 0) {
            sink.clear();
        }
    });
    (child, tcp.unwrap(), http.unwrap())
}

fn send_signal(pid: u32, sig: &str) {
    let status = Command::new("sh")
        .arg("-c")
        .arg(format!("kill -s {sig} {pid}"))
        .status()
        .expect("run kill");
    assert!(status.success(), "kill -s {sig} {pid} failed");
}

fn wait_with_timeout(child: &mut Child, timeout: Duration) -> std::process::ExitStatus {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        assert!(Instant::now() < deadline, "daemon did not exit in time");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Submits one small run job over raw TCP and waits for its reply.
fn submit_quick_job(addr: &str) {
    use std::io::Write;
    let mut stream = std::net::TcpStream::connect(addr).expect("connect tcp");
    stream
        .write_all(b"{\"proto\":2,\"type\":\"run\",\"benchmark\":\"gcc\",\"slices\":1,\"banks\":2,\"len\":500,\"seed\":1}\n")
        .unwrap();
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).unwrap();
    assert!(line.contains("\"ok\":true"), "{line}");
}

/// Fires one slow run job over raw TCP without waiting for the reply;
/// returns the open stream so the connection outlives the call.
fn submit_slow_job(addr: &str) -> std::net::TcpStream {
    use std::io::Write;
    let mut stream = std::net::TcpStream::connect(addr).expect("connect tcp");
    stream
        .write_all(b"{\"proto\":2,\"type\":\"run\",\"benchmark\":\"gcc\",\"slices\":1,\"banks\":2,\"len\":400000,\"seed\":2}\n")
        .unwrap();
    stream
}

#[test]
fn pidfile_is_created_and_removed_by_sigterm_drain() {
    let pidfile = unique_path("pid");
    let (mut child, _tcp, http) = spawn_daemon(&["--pidfile", pidfile.to_str().unwrap()]);

    let content = std::fs::read_to_string(&pidfile).expect("pidfile written at startup");
    assert_eq!(content.trim().parse::<u32>().ok(), Some(child.id()));

    let (status, _) = request(&http, "GET", "/health", None).expect("health while up");
    assert_eq!(status, 200);

    send_signal(child.id(), "TERM");
    let status = wait_with_timeout(&mut child, Duration::from_secs(30));
    assert!(status.success(), "graceful drain should exit 0: {status:?}");
    assert!(
        !Path::new(&pidfile).exists(),
        "pidfile must be removed on exit"
    );
    // The front door is gone with the process.
    assert!(request(&http, "GET", "/health", None).is_err());
}

#[test]
fn sigkill_leaves_the_streamed_span_file_recoverable() {
    // The `.jsonl` suffix is what opts the daemon into streaming.
    let trace_file = unique_path("trace").with_extension("jsonl");
    let trace_arg = trace_file.to_str().unwrap().to_string();
    let (mut child, tcp, _http) = spawn_daemon(&["--trace-out", &trace_arg]);

    // A traced job: the daemon streams its spans to the sink as they
    // happen (flushed per line), not at exit.
    {
        use std::io::Write;
        let mut stream = std::net::TcpStream::connect(&tcp).expect("connect tcp");
        stream
            .write_all(b"{\"proto\":2,\"trace\":55,\"type\":\"run\",\"benchmark\":\"gcc\",\"slices\":1,\"banks\":2,\"len\":500,\"seed\":1}\n")
            .unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        // First the spans line, then the result.
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"type\":\"spans\""), "{line}");
        assert!(line.contains("\"trace\":55"), "{line}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"ok\":true"), "{line}");
    }

    // Wait for the writer thread to land the job's spans on disk, then
    // SIGKILL — no drain, no close, the crash case the sink exists for.
    let deadline = Instant::now() + Duration::from_secs(10);
    while !std::fs::read_to_string(&trace_file)
        .map(|t| t.contains("\"trace\":55"))
        .unwrap_or(false)
    {
        assert!(Instant::now() < deadline, "spans never reached the sink");
        std::thread::sleep(Duration::from_millis(25));
    }
    send_signal(child.id(), "KILL");
    let _ = wait_with_timeout(&mut child, Duration::from_secs(30));

    // Every line in the file is a complete event, and the stream
    // re-wraps into a valid Chrome document with nothing skipped.
    let text = std::fs::read_to_string(&trace_file).unwrap();
    let (doc, skipped) = sharing_obs::jsonl_to_chrome(&text);
    assert_eq!(skipped, 0, "a kill between lines loses nothing:\n{text}");
    let v = sharing_json::Json::parse(&doc).expect("packed doc parses");
    let events = v
        .get("traceEvents")
        .and_then(sharing_json::Json::as_arr)
        .unwrap();
    assert!(
        events.iter().any(|e| {
            e.get("args")
                .and_then(|a| a.get("trace"))
                .and_then(sharing_json::Json::as_int)
                == Some(55)
        }),
        "traced job's span survived the kill: {doc}"
    );

    let _ = std::fs::remove_file(&trace_file);
}

#[test]
fn sigkill_mid_drain_leaves_the_cache_file_loadable() {
    let cache_file = unique_path("cache");
    let cache_arg = cache_file.to_str().unwrap().to_string();

    // First life: one cached job, then a graceful SIGTERM drain that
    // persists the cache file.
    let (mut child, tcp, _http) = spawn_daemon(&["--cache-file", &cache_arg]);
    submit_quick_job(&tcp);
    send_signal(child.id(), "TERM");
    let status = wait_with_timeout(&mut child, Duration::from_secs(30));
    assert!(status.success(), "{status:?}");
    let cache = ResultCache::new(64);
    let loaded = cache.load_from_file(&cache_file).expect("clean cache file");
    assert_eq!(loaded, 1, "the quick job's result was persisted");

    // Second life: a slow job is in flight; SIGTERM starts the drain and
    // SIGKILL lands mid-drain, before the (atomic tmp+rename) save can
    // replace the file. A stale half-written sibling tmp file must not
    // corrupt anything either.
    let (mut child, tcp, _http) = spawn_daemon(&["--cache-file", &cache_arg]);
    let _conn = submit_slow_job(&tcp);
    std::thread::sleep(Duration::from_millis(150));
    send_signal(child.id(), "TERM");
    send_signal(child.id(), "KILL");
    let _ = wait_with_timeout(&mut child, Duration::from_secs(30));
    std::fs::write(cache_file.with_extension("tmp"), b"garbage{{{").unwrap();

    let cache = ResultCache::new(64);
    let loaded = cache
        .load_from_file(&cache_file)
        .expect("cache file still parses after a mid-drain kill");
    assert_eq!(loaded, 1, "the previous life's entry survived intact");

    let _ = std::fs::remove_file(&cache_file);
    let _ = std::fs::remove_file(cache_file.with_extension("tmp"));
}
