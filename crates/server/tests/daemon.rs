//! End-to-end tests of the ssimd daemon over real TCP sockets.

use sharing_json::Json;
use sharing_market::{Market, UtilityFn};
use sharing_server::{
    Client, Envelope, ErrorCode, Job, Request, Server, ServerConfig, ServerError,
};
use sharing_trace::Benchmark;

fn gcc_run(slices: usize, banks: usize, len: usize, seed: u64) -> Job {
    Job::Run(sharing_server::RunJob {
        workload: sharing_server::JobWorkload::Benchmark(Benchmark::Gcc),
        slices,
        banks,
        len,
        seed,
    })
}

fn dc_job(scenario: sharing_dc::Scenario, seed: u64, mode: Option<sharing_dc::BillingMode>) -> Job {
    Job::Dc(Box::new(sharing_server::DcJob {
        scenario,
        seed,
        mode,
    }))
}

/// The typed error code of a reply, for code-based (never substring)
/// assertions.
fn code(v: &Json) -> Option<ErrorCode> {
    ServerError::from_reply(v).map(|e| e.code)
}

fn start(workers: usize, queue: usize) -> sharing_server::ServerHandle {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_capacity: queue,
        cache_capacity: 256,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
}

fn ok(v: &Json) -> bool {
    v.get("ok").and_then(Json::as_bool) == Some(true)
}

/// Pulls the raw serialized `"result"` payload out of a reply line, for
/// byte-level comparison.
fn raw_result_payload(line: &str) -> &str {
    let start = line.find("\"result\":").expect("result field") + "\"result\":".len();
    &line[start..line.len() - 1]
}

#[test]
fn ping_stats_and_error_replies() {
    let handle = start(1, 4);
    let mut c = Client::connect(handle.local_addr()).unwrap();
    assert!(c.ping().unwrap());

    let stats = c.stats().unwrap();
    assert_eq!(stats.get("jobs_completed").and_then(Json::as_int), Some(0));
    assert_eq!(stats.get("workers").and_then(Json::as_int), Some(1));

    // Malformed requests get an error reply, not a dropped connection.
    use std::io::Write;
    let mut raw = std::net::TcpStream::connect(handle.local_addr()).unwrap();
    raw.write_all(b"this is not json\n").unwrap();
    let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
    let mut line = String::new();
    std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
    let v = Json::parse(line.trim()).unwrap();
    assert_eq!(code(&v), Some(ErrorCode::BadRequest), "{v}");
    // An unknown request type gets its own code.
    raw.write_all(b"{\"type\":\"explode\"}\n").unwrap();
    line.clear();
    std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
    let v = Json::parse(line.trim()).unwrap();
    assert_eq!(code(&v), Some(ErrorCode::UnknownRequest), "{v}");
    // The connection is still usable afterwards.
    raw.write_all(b"{\"type\":\"ping\"}\n").unwrap();
    line.clear();
    std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
    assert!(ok(&Json::parse(line.trim()).unwrap()));

    handle.stop();
}

#[test]
fn hello_negotiates_and_future_protos_are_refused_with_a_typed_code() {
    let handle = start(1, 4);
    let mut c = Client::connect(handle.local_addr()).unwrap();
    assert_eq!(c.hello().unwrap(), sharing_server::PROTO_VERSION);

    // A request announcing a protocol from the future gets a
    // version_mismatch refusal, not a guess — and the connection lives on.
    let v = c
        .call(&Envelope {
            id: Some(9),
            proto: Some(sharing_server::PROTO_VERSION + 1),
            trace: None,
            req: Request::Ping,
        })
        .unwrap();
    assert_eq!(code(&v), Some(ErrorCode::VersionMismatch), "{v}");
    assert_eq!(v.get("id").and_then(Json::as_int), Some(9));
    assert!(c.ping().unwrap());

    // A versionless request is the v1 dialect: still accepted.
    let v = c
        .call(&Envelope {
            id: None,
            proto: None,
            trace: None,
            req: Request::Ping,
        })
        .unwrap();
    assert!(ok(&v), "{v}");

    handle.stop();
}

#[test]
fn metrics_request_returns_prometheus_text_and_trace_lands_on_shutdown() {
    let dir = std::env::temp_dir().join(format!("ssimd-trace-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("jobs.trace.json").to_string_lossy().into_owned();
    let handle = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: 8,
        cache_capacity: 64,
        trace_path: Some(trace_path.clone()),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let mut c = Client::connect(handle.local_addr()).unwrap();
    c.submit(gcc_run(2, 2, 600, 5)).unwrap();
    c.submit(gcc_run(2, 2, 600, 5)).unwrap(); // cache hit
    c.submit(dc_job(
        small_scenario(),
        3,
        Some(sharing_dc::BillingMode::Sharing),
    ))
    .unwrap();

    // stats carries the queue-wait/execute split and per-kind counters.
    let stats = c.stats().unwrap();
    assert_eq!(stats.get("jobs_completed").and_then(Json::as_int), Some(3));
    assert!(stats
        .get("queue_wait_p50_us")
        .and_then(Json::as_int)
        .is_some());
    assert!(stats
        .get("queue_wait_p99_us")
        .and_then(Json::as_int)
        .is_some());
    assert!(stats.get("exec_p50_us").and_then(Json::as_int).is_some());
    let by_kind = stats.get("completed_by_kind").expect("kind breakdown");
    assert_eq!(by_kind.get("simulate").and_then(Json::as_int), Some(2));
    assert_eq!(by_kind.get("dc").and_then(Json::as_int), Some(1));

    // The metrics request answers with Prometheus text exposition.
    let text = c.metrics().unwrap();
    assert!(
        text.contains("# TYPE ssimd_jobs_completed_total counter"),
        "{text}"
    );
    assert!(
        text.contains("ssimd_jobs_completed_total{kind=\"simulate\"} 2"),
        "{text}"
    );
    assert!(
        text.contains("ssimd_jobs_completed_total{kind=\"dc\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("# TYPE ssimd_queue_wait_us histogram"),
        "{text}"
    );
    assert!(
        text.contains("ssimd_queue_wait_us_bucket{le=\"+Inf\"} 3"),
        "{text}"
    );
    assert!(text.contains("ssimd_queue_wait_us_count 3"), "{text}");
    assert!(text.contains("ssimd_latency_us_bucket{le=\""), "{text}");
    assert!(
        text.contains("ssimd_cache_lookups_total{outcome=\"hit\"} 1"),
        "{text}"
    );

    // Graceful shutdown writes the per-job Chrome trace.
    handle.stop();
    let trace = std::fs::read_to_string(&trace_path).expect("trace file written");
    let v = Json::parse(&trace).expect("trace is valid JSON");
    let events = v
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let job_spans: Vec<_> = events
        .iter()
        .filter(|e| e.get("cat").and_then(Json::as_str) == Some("ssimd"))
        .collect();
    assert_eq!(job_spans.len(), 3, "one span per executed job");
    for span in &job_spans {
        let args = span.get("args").expect("span args");
        assert!(args.get("queue_wait_us").and_then(Json::as_int).is_some());
        assert!(args.get("exec_us").and_then(Json::as_int).is_some());
        assert!(args.get("kind").and_then(Json::as_str).is_some());
        assert!(span.get("ts").and_then(Json::as_int).unwrap() >= 0);
        assert!(span.get("dur").and_then(Json::as_int).unwrap() >= 0);
    }
    let cached_flags: Vec<bool> = job_spans
        .iter()
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("cached"))
                .and_then(Json::as_bool)
        })
        .collect();
    assert!(
        cached_flags.contains(&true),
        "the warm run span marks the cache hit"
    );
    std::fs::remove_file(&trace_path).ok();
}

#[test]
fn run_result_matches_local_simulation_and_cache_is_byte_identical() {
    let handle = start(2, 8);
    let mut c = Client::connect(handle.local_addr()).unwrap();

    // First submission: fresh.
    let env = Envelope {
        id: Some(1),
        proto: Some(sharing_server::PROTO_VERSION),
        trace: None,
        req: Request::Job(gcc_run(2, 2, 800, 42)),
    };
    c.send(&env).unwrap();
    let first = c.recv().unwrap();
    assert!(ok(&first), "{first}");
    assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(first.get("id").and_then(Json::as_int), Some(1));
    assert_eq!(
        first
            .get("result")
            .and_then(|r| r.get("instructions"))
            .and_then(Json::as_int),
        Some(800)
    );

    // Second submission: served from cache, byte-identical payload.
    c.send(&env).unwrap();
    let second = c.recv().unwrap();
    assert_eq!(second.get("cached").and_then(Json::as_bool), Some(true));
    let first_line = first.to_string();
    let second_line = second.to_string();
    assert_eq!(
        raw_result_payload(&first_line),
        raw_result_payload(&second_line),
        "cache replay must be byte-identical"
    );

    // The payload also matches a local simulation exactly.
    let local = sharing_json::to_string(
        &sharing_server::exec::simulate(&sharing_server::RunJob {
            workload: sharing_server::JobWorkload::Benchmark(Benchmark::Gcc),
            slices: 2,
            banks: 2,
            len: 800,
            seed: 42,
        })
        .unwrap(),
    );
    assert_eq!(raw_result_payload(&first_line), local);

    let stats = c.stats().unwrap();
    assert_eq!(stats.get("cache_hits").and_then(Json::as_int), Some(1));
    assert_eq!(stats.get("cache_misses").and_then(Json::as_int), Some(1));

    handle.stop();
}

#[test]
fn queue_full_gets_backpressure_reply_and_recovers() {
    // One slow worker, queue of one: saturating it must produce explicit
    // backpressure replies, and draining must restore admission.
    let handle = start(1, 1);
    let addr = handle.local_addr();

    let job = |seed: u64| Envelope {
        id: Some(seed),
        proto: None,
        trace: None,
        req: Request::Job(Job::Run(sharing_server::RunJob {
            workload: sharing_server::JobWorkload::Benchmark(Benchmark::Mcf),
            slices: 1,
            banks: 2,
            len: 20_000,
            seed,
        })),
    };

    // Fire 6 jobs from 6 connections without reading replies: at most
    // 1 active + 1 queued can be admitted at any instant, so at least 4
    // must bounce.
    let mut clients: Vec<Client> = (0..6)
        .map(|i| {
            let mut c = Client::connect(addr).unwrap();
            c.send(&job(i)).unwrap();
            c
        })
        .collect();
    let replies: Vec<Json> = clients.iter_mut().map(|c| c.recv().unwrap()).collect();
    let rejected: Vec<&Json> = replies.iter().filter(|v| !ok(v)).collect();
    let accepted = replies.iter().filter(|v| ok(v)).count();
    assert!(
        rejected.len() >= 4,
        "expected >=4 backpressure replies, got {} of {replies:?}",
        rejected.len()
    );
    assert!(accepted >= 1, "at least the first job must be admitted");
    for r in &rejected {
        assert_eq!(code(r), Some(ErrorCode::QueueFull), "{r}");
        assert_eq!(
            r.get("backpressure").and_then(Json::as_bool),
            Some(true),
            "{r}"
        );
        assert!(r.get("queue_depth").and_then(Json::as_int).is_some());
    }

    // After the accepted work drains, the queue admits again.
    let mut c = Client::connect(addr).unwrap();
    let retry = c
        .submit(Job::Run(sharing_server::RunJob {
            workload: sharing_server::JobWorkload::Benchmark(Benchmark::Mcf),
            slices: 1,
            banks: 2,
            len: 500,
            seed: 99,
        }))
        .unwrap();
    assert!(ok(&retry), "{retry}");

    let stats = c.stats().unwrap();
    assert!(
        stats
            .get("jobs_rejected")
            .and_then(Json::as_int)
            .unwrap_or(0)
            >= 4,
        "rejections must be counted"
    );

    handle.stop();
}

#[test]
fn concurrent_clients_all_get_correct_results() {
    let handle = start(4, 32);
    let addr = handle.local_addr();
    let threads: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let reply = c.submit(gcc_run(1 + i, 2, 600, i as u64)).unwrap();
                assert!(ok(&reply), "{reply}");
                let insts = reply
                    .get("result")
                    .and_then(|r| r.get("instructions"))
                    .and_then(Json::as_int);
                assert_eq!(insts, Some(600));
                reply
                    .get("result")
                    .and_then(|r| r.get("cycles"))
                    .and_then(Json::as_int)
                    .expect("cycles")
            })
        })
        .collect();
    let cycles: Vec<i128> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    // Different shapes ⇒ different cycle counts (sanity that jobs were not
    // cross-wired between connections).
    assert_eq!(cycles.len(), 4);

    // Metrics are updated by the workers just after the reply is sent, so
    // give the counter a moment to settle.
    let mut c = Client::connect(addr).unwrap();
    let mut completed = 0;
    for _ in 0..50 {
        completed = c
            .stats()
            .unwrap()
            .get("jobs_completed")
            .and_then(Json::as_int)
            .unwrap_or(0);
        if completed == 4 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert_eq!(completed, 4);

    handle.stop();
}

#[test]
fn sweep_streams_points_and_market_picks_a_grid_shape() {
    let handle = start(2, 8);
    let mut c = Client::connect(handle.local_addr()).unwrap();

    let lines = c
        .submit_all(Job::Sweep(sharing_server::SweepJob {
            benchmark: Benchmark::Hmmer,
            len: 300,
            seed: 5,
        }))
        .unwrap();
    let done = lines.last().unwrap();
    assert_eq!(done.get("type").and_then(Json::as_str), Some("sweep_done"));
    assert_eq!(done.get("points").and_then(Json::as_int), Some(72));
    assert_eq!(lines.len(), 73, "72 streamed points plus the final line");
    for p in &lines[..72] {
        assert_eq!(p.get("type").and_then(Json::as_str), Some("sweep_point"));
        assert!(p.get("ipc").and_then(Json::as_f64).unwrap() > 0.0);
    }

    // A market evaluation over the same grid reuses the cache.
    let reply = c
        .submit(Job::Market(sharing_server::MarketJob {
            benchmark: Benchmark::Hmmer,
            utility: UtilityFn::Throughput,
            market: Market::MARKET2,
            budget: 100.0,
            len: 300,
            seed: 5,
        }))
        .unwrap();
    assert!(ok(&reply), "{reply}");
    let shape = reply.get("shape").expect("shape");
    let slices = shape.get("slices").and_then(Json::as_int).unwrap();
    assert!((1..=8).contains(&slices));
    let stats = c.stats().unwrap();
    assert_eq!(
        stats.get("cache_hits").and_then(Json::as_int),
        Some(72),
        "market evaluation should be fully cache-fed after the sweep"
    );

    handle.stop();
}

/// A scenario small enough for fast e2e runs but with enough churn to
/// exercise the market.
fn small_scenario() -> sharing_dc::Scenario {
    let mut sc = sharing_dc::Scenario::example_bursty();
    sc.name = "e2e-small".into();
    sc.chips = 2;
    sc.epochs = 8;
    sc.epoch_cycles = 10_000;
    sc
}

#[test]
fn dc_job_runs_a_scenario_and_caches_the_comparison() {
    let handle = start(2, 8);
    let mut c = Client::connect(handle.local_addr()).unwrap();

    let first = c.submit(dc_job(small_scenario(), 7, None)).unwrap();
    assert!(ok(&first), "{first}");
    assert_eq!(first.get("type").and_then(Json::as_str), Some("dc_result"));
    assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));
    let result = first.get("result").expect("result");
    assert_eq!(
        result.get("scenario").and_then(Json::as_str),
        Some("e2e-small")
    );
    let sharing = result.get("sharing").expect("sharing totals");
    let fixed = result.get("fixed").expect("fixed totals");
    assert_eq!(sharing.get("epochs").and_then(Json::as_int), Some(8));
    assert_eq!(fixed.get("epochs").and_then(Json::as_int), Some(8));

    // The reply's totals match a local run of the same scenario exactly —
    // including the event-log hash, the strongest determinism check that
    // fits in one line.
    let local = sharing_dc::DcSim::new(small_scenario())
        .unwrap()
        .run(sharing_dc::BillingMode::Sharing, 7)
        .totals();
    assert_eq!(
        sharing.get("log_hash").and_then(Json::as_str),
        Some(local.log_hash.as_str())
    );
    assert_eq!(
        sharing.get("arrivals").and_then(Json::as_int),
        Some(i128::from(local.arrivals))
    );

    // Resubmission hits the cache with a byte-identical payload.
    let second = c.submit(dc_job(small_scenario(), 7, None)).unwrap();
    assert_eq!(second.get("cached").and_then(Json::as_bool), Some(true));
    let first_line = first.to_string();
    let second_line = second.to_string();
    assert_eq!(
        raw_result_payload(&first_line),
        raw_result_payload(&second_line),
        "cache replay must be byte-identical"
    );

    // A single-mode run reports only that mode, under a different key.
    let only_fixed = c
        .submit(dc_job(
            small_scenario(),
            7,
            Some(sharing_dc::BillingMode::Fixed),
        ))
        .unwrap();
    assert!(ok(&only_fixed), "{only_fixed}");
    let r = only_fixed.get("result").unwrap();
    assert!(r.get("fixed").is_some());
    assert!(r.get("sharing").is_none());
    assert_eq!(
        only_fixed.get("cached").and_then(Json::as_bool),
        Some(false)
    );

    handle.stop();
}

#[test]
fn cache_persists_across_daemon_restarts() {
    let dir = std::env::temp_dir().join(format!("ssimd-cache-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.ssimd").to_string_lossy().into_owned();
    let cfg = || ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: 8,
        cache_capacity: 256,
        cache_path: Some(path.clone()),
        ..ServerConfig::default()
    };

    // First daemon: run one simulation job and one dc job, then shut down
    // gracefully so the cache is persisted.
    let handle = Server::start(cfg()).expect("bind first daemon");
    let mut c = Client::connect(handle.local_addr()).unwrap();
    let run_fresh = c.submit(gcc_run(2, 2, 800, 42)).unwrap();
    assert_eq!(run_fresh.get("cached").and_then(Json::as_bool), Some(false));
    let dc_fresh = c.submit(dc_job(small_scenario(), 7, None)).unwrap();
    assert_eq!(dc_fresh.get("cached").and_then(Json::as_bool), Some(false));
    handle.stop();
    assert!(
        std::fs::metadata(&path).is_ok(),
        "graceful shutdown must write the cache file"
    );

    // Second daemon: both jobs are warm on the very first submission, and
    // the replayed payloads are byte-identical to the original runs.
    let handle = Server::start(cfg()).expect("bind second daemon");
    let mut c = Client::connect(handle.local_addr()).unwrap();
    let run_warm = c.submit(gcc_run(2, 2, 800, 42)).unwrap();
    assert_eq!(
        run_warm.get("cached").and_then(Json::as_bool),
        Some(true),
        "reloaded cache must serve the run job: {run_warm}"
    );
    let dc_warm = c.submit(dc_job(small_scenario(), 7, None)).unwrap();
    assert_eq!(dc_warm.get("cached").and_then(Json::as_bool), Some(true));
    let fresh_line = run_fresh.to_string();
    let warm_line = run_warm.to_string();
    assert_eq!(
        raw_result_payload(&fresh_line),
        raw_result_payload(&warm_line),
        "persisted replay must be byte-identical"
    );
    let dc_fresh_line = dc_fresh.to_string();
    let dc_warm_line = dc_warm.to_string();
    assert_eq!(
        raw_result_payload(&dc_fresh_line),
        raw_result_payload(&dc_warm_line),
        "persisted dc replay must be byte-identical"
    );
    handle.stop();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_drains_in_flight_jobs() {
    let handle = start(1, 4);
    let addr = handle.local_addr();

    // A slow-ish job occupies the single worker.
    let mut busy = Client::connect(addr).unwrap();
    busy.send(&Envelope {
        id: Some(1),
        proto: None,
        trace: None,
        req: Request::Job(gcc_run(1, 2, 30_000, 1)),
    })
    .unwrap();

    // Wait until the job is admitted before asking for shutdown — the
    // `send` above only guarantees the bytes left our socket.
    let mut admin = Client::connect(addr).unwrap();
    for _ in 0..100 {
        let submitted = admin
            .stats()
            .unwrap()
            .get("jobs_submitted")
            .and_then(Json::as_int)
            .unwrap_or(0);
        if submitted >= 1 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // Shutdown must wait for the drain.
    let reply = admin.shutdown().unwrap();
    assert!(ok(&reply), "{reply}");
    assert!(
        reply.get("jobs_completed").and_then(Json::as_int).unwrap() >= 1,
        "shutdown replied before the in-flight job drained: {reply}"
    );

    // The in-flight job still got its result.
    let result = busy.recv().unwrap();
    assert!(ok(&result), "{result}");
    assert_eq!(
        result
            .get("result")
            .and_then(|r| r.get("instructions"))
            .and_then(Json::as_int),
        Some(30_000)
    );

    handle.join();
    // The listener is gone: new connections are refused.
    assert!(Client::connect(addr).is_err());
}
