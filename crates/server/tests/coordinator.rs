//! Multi-node tests: a coordinator ssimd fanning a sweep out over real
//! worker daemons on loopback, including a worker killed mid-sweep.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use sharing_json::Json;
use sharing_server::{Server, ServerConfig, ServerHandle};

fn daemon() -> ServerHandle {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 256,
        ..ServerConfig::default()
    })
    .expect("bind worker daemon")
}

fn coordinator(worker_addrs: Vec<String>) -> ServerHandle {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 256,
        remote_workers: worker_addrs,
        ping_interval_ms: 100,
        ..ServerConfig::default()
    })
    .expect("bind coordinator")
}

/// One fixed sweep request, sent byte-for-byte identically to every
/// daemon under test so replies can be compared byte-for-byte too.
const SWEEP_REQ: &[u8] =
    b"{\"id\":1,\"type\":\"sweep\",\"benchmark\":\"gcc\",\"len\":2000,\"seed\":9}\n";

/// Streams one sweep over a raw socket and returns the reply lines
/// verbatim (72 `sweep_point`s then `sweep_done` on success).
/// `after_first` runs once the first line has arrived — the hook the
/// kill test uses to stop a worker mid-sweep.
fn raw_sweep(addr: std::net::SocketAddr, mut after_first: impl FnMut()) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(SWEEP_REQ).expect("send sweep");
    let mut reader = BufReader::new(stream);
    let mut lines = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read reply") == 0 {
            panic!("connection closed mid-sweep after {} lines", lines.len());
        }
        let line = line.trim_end().to_string();
        let v = Json::parse(&line).expect("reply is JSON");
        let ty = v.get("type").and_then(Json::as_str).map(str::to_string);
        lines.push(line);
        if lines.len() == 1 {
            after_first();
        }
        match ty.as_deref() {
            Some("sweep_point") => {}
            Some("sweep_done") => return lines,
            other => panic!("unexpected reply type {other:?}: {}", lines.last().unwrap()),
        }
    }
}

fn metrics_text(addr: std::net::SocketAddr) -> String {
    let mut c = sharing_server::Client::connect(addr).unwrap();
    c.metrics().unwrap()
}

/// Reads one counter/gauge sample value out of Prometheus text.
fn sample(text: &str, name: &str) -> Option<f64> {
    text.lines()
        .find(|l| l.split_whitespace().next() == Some(name))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

#[test]
fn coordinator_sweep_over_two_workers_is_byte_identical_to_single_node() {
    let single = daemon();
    let reference = raw_sweep(single.local_addr(), || {});
    single.stop();
    assert_eq!(reference.len(), 73, "72 points + sweep_done");

    let w1 = daemon();
    let w2 = daemon();
    let coord = coordinator(vec![
        w1.local_addr().to_string(),
        w2.local_addr().to_string(),
    ]);

    let fanned = raw_sweep(coord.local_addr(), || {});
    assert_eq!(fanned, reference, "fan-out must not change a single byte");

    // Every cache miss was dispatched remotely, spread over both workers.
    let text = metrics_text(coord.local_addr());
    assert_eq!(
        sample(&text, "ssimd_dispatched_total"),
        Some(72.0),
        "{text}"
    );
    assert_eq!(sample(&text, "ssimd_workers_configured"), Some(2.0));
    assert_eq!(sample(&text, "ssimd_workers_healthy"), Some(2.0));
    for w in [&w1, &w2] {
        let name = format!(
            "ssimd_worker_dispatched_total{{worker=\"{}\"}}",
            w.local_addr()
        );
        assert!(
            sample(&text, &name).is_some_and(|n| n > 0.0),
            "both workers should have taken points: {text}"
        );
    }

    // A repeat sweep is answered from the coordinator's own cache —
    // still byte-identical except for the per-point `cached` flag.
    let replay = raw_sweep(coord.local_addr(), || {});
    assert_eq!(replay.len(), reference.len());
    for (r, f) in replay.iter().zip(&reference) {
        assert_eq!(r.replace("\"cached\":true", "\"cached\":false"), *f);
    }
    let text = metrics_text(coord.local_addr());
    assert_eq!(
        sample(&text, "ssimd_dispatched_total"),
        Some(72.0),
        "replay must not re-dispatch: {text}"
    );

    coord.stop();
    w1.stop();
    w2.stop();
}

#[test]
fn worker_killed_mid_sweep_is_retried_on_the_survivor_byte_identically() {
    let single = daemon();
    let reference = raw_sweep(single.local_addr(), || {});
    single.stop();

    let w1 = daemon();
    let w2 = daemon();
    let coord = coordinator(vec![
        w1.local_addr().to_string(),
        w2.local_addr().to_string(),
    ]);

    // Kill w1 as soon as the first point lands. Its in-flight point (if
    // any) drains, then every later dispatch to it is refused, so the
    // coordinator must re-queue that work onto w2.
    let mut killer = Some(w1);
    let fanned = raw_sweep(coord.local_addr(), || {
        if let Some(w) = killer.take() {
            w.stop();
        }
    });
    assert_eq!(
        fanned, reference,
        "losing a worker mid-sweep must not change a single byte"
    );

    // The failure is visible, not silent: retries were taken and the
    // pool now counts one healthy worker of two.
    let text = metrics_text(coord.local_addr());
    assert!(
        sample(&text, "ssimd_dispatch_retries_total").is_some_and(|n| n >= 1.0),
        "expected at least one recorded retry: {text}"
    );
    assert_eq!(sample(&text, "ssimd_workers_configured"), Some(2.0));
    assert_eq!(sample(&text, "ssimd_workers_healthy"), Some(1.0), "{text}");

    coord.stop();
    w2.stop();
}

#[test]
fn coordinator_refuses_to_start_without_reachable_workers() {
    // Reserve an address that is then closed again: nothing listens there.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let err = match Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_capacity: 4,
        cache_capacity: 16,
        remote_workers: vec![dead.clone()],
        ..ServerConfig::default()
    }) {
        Ok(_) => panic!("registration against a dead worker must fail"),
        Err(e) => e,
    };
    assert!(err.to_string().contains(&dead), "{err}");
}
