//! Multi-node tests: a coordinator ssimd fanning a sweep out over real
//! worker daemons on loopback, including a worker killed mid-sweep.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use sharing_json::Json;
use sharing_server::{Server, ServerConfig, ServerHandle};

fn daemon() -> ServerHandle {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 256,
        ..ServerConfig::default()
    })
    .expect("bind worker daemon")
}

fn coordinator(worker_addrs: Vec<String>) -> ServerHandle {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 256,
        remote_workers: worker_addrs,
        ping_interval_ms: 100,
        ..ServerConfig::default()
    })
    .expect("bind coordinator")
}

/// One fixed sweep request, sent byte-for-byte identically to every
/// daemon under test so replies can be compared byte-for-byte too.
const SWEEP_REQ: &[u8] =
    b"{\"id\":1,\"type\":\"sweep\",\"benchmark\":\"gcc\",\"len\":2000,\"seed\":9}\n";

/// Streams one sweep over a raw socket and returns the reply lines
/// verbatim (72 `sweep_point`s then `sweep_done` on success).
/// `after_first` runs once the first line has arrived — the hook the
/// kill test uses to stop a worker mid-sweep.
fn raw_sweep(addr: std::net::SocketAddr, mut after_first: impl FnMut()) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(SWEEP_REQ).expect("send sweep");
    let mut reader = BufReader::new(stream);
    let mut lines = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read reply") == 0 {
            panic!("connection closed mid-sweep after {} lines", lines.len());
        }
        let line = line.trim_end().to_string();
        let v = Json::parse(&line).expect("reply is JSON");
        let ty = v.get("type").and_then(Json::as_str).map(str::to_string);
        lines.push(line);
        if lines.len() == 1 {
            after_first();
        }
        match ty.as_deref() {
            Some("sweep_point") => {}
            Some("sweep_done") => return lines,
            other => panic!("unexpected reply type {other:?}: {}", lines.last().unwrap()),
        }
    }
}

fn metrics_text(addr: std::net::SocketAddr) -> String {
    let mut c = sharing_server::Client::connect(addr).unwrap();
    c.metrics().unwrap()
}

/// Reads one counter/gauge sample value out of Prometheus text.
fn sample(text: &str, name: &str) -> Option<f64> {
    text.lines()
        .find(|l| l.split_whitespace().next() == Some(name))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

#[test]
fn coordinator_sweep_over_two_workers_is_byte_identical_to_single_node() {
    let single = daemon();
    let reference = raw_sweep(single.local_addr(), || {});
    single.stop();
    assert_eq!(reference.len(), 73, "72 points + sweep_done");

    let w1 = daemon();
    let w2 = daemon();
    let coord = coordinator(vec![
        w1.local_addr().to_string(),
        w2.local_addr().to_string(),
    ]);

    let fanned = raw_sweep(coord.local_addr(), || {});
    assert_eq!(fanned, reference, "fan-out must not change a single byte");

    // Every cache miss was dispatched remotely, spread over both workers.
    let text = metrics_text(coord.local_addr());
    assert_eq!(
        sample(&text, "ssimd_dispatched_total"),
        Some(72.0),
        "{text}"
    );
    assert_eq!(sample(&text, "ssimd_workers_configured"), Some(2.0));
    assert_eq!(sample(&text, "ssimd_workers_healthy"), Some(2.0));
    for w in [&w1, &w2] {
        let name = format!(
            "ssimd_worker_dispatched_total{{worker=\"{}\"}}",
            w.local_addr()
        );
        assert!(
            sample(&text, &name).is_some_and(|n| n > 0.0),
            "both workers should have taken points: {text}"
        );
    }

    // A repeat sweep is answered from the coordinator's own cache —
    // still byte-identical except for the per-point `cached` flag.
    let replay = raw_sweep(coord.local_addr(), || {});
    assert_eq!(replay.len(), reference.len());
    for (r, f) in replay.iter().zip(&reference) {
        assert_eq!(r.replace("\"cached\":true", "\"cached\":false"), *f);
    }
    let text = metrics_text(coord.local_addr());
    assert_eq!(
        sample(&text, "ssimd_dispatched_total"),
        Some(72.0),
        "replay must not re-dispatch: {text}"
    );

    coord.stop();
    w1.stop();
    w2.stop();
}

#[test]
fn worker_killed_mid_sweep_is_retried_on_the_survivor_byte_identically() {
    let single = daemon();
    let reference = raw_sweep(single.local_addr(), || {});
    single.stop();

    let w1 = daemon();
    let w2 = daemon();
    let coord = coordinator(vec![
        w1.local_addr().to_string(),
        w2.local_addr().to_string(),
    ]);

    // Kill w1 as soon as the first point lands. Its in-flight point (if
    // any) drains, then every later dispatch to it is refused, so the
    // coordinator must re-queue that work onto w2.
    let mut killer = Some(w1);
    let fanned = raw_sweep(coord.local_addr(), || {
        if let Some(w) = killer.take() {
            w.stop();
        }
    });
    assert_eq!(
        fanned, reference,
        "losing a worker mid-sweep must not change a single byte"
    );

    // The failure is visible, not silent: retries were taken and the
    // pool now counts one healthy worker of two.
    let text = metrics_text(coord.local_addr());
    assert!(
        sample(&text, "ssimd_dispatch_retries_total").is_some_and(|n| n >= 1.0),
        "expected at least one recorded retry: {text}"
    );
    assert_eq!(sample(&text, "ssimd_workers_configured"), Some(2.0));
    assert_eq!(sample(&text, "ssimd_workers_healthy"), Some(1.0), "{text}");

    coord.stop();
    w2.stop();
}

/// A worker that is alive but stalled: it answers `hello` and `ping`
/// promptly (so registration succeeds and health probes keep calling it
/// healthy) but never replies to a job request until `stop` flips.
fn stalling_worker() -> (
    std::net::SocketAddr,
    std::sync::Arc<std::sync::atomic::AtomicBool>,
) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind staller");
    let addr = listener.local_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let accept_flag = Arc::clone(&stop);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_flag.load(Ordering::SeqCst) {
                return;
            }
            let Ok(stream) = stream else { return };
            let conn_flag = Arc::clone(&accept_flag);
            std::thread::spawn(move || {
                let mut reader = BufReader::new(stream.try_clone().expect("clone socket"));
                let mut writer = stream;
                loop {
                    let mut line = String::new();
                    match reader.read_line(&mut line) {
                        Ok(0) | Err(_) => return,
                        Ok(_) => {}
                    }
                    let reply = if line.contains("\"hello\"") {
                        format!(
                            "{{\"ok\":true,\"type\":\"hello\",\"proto\":{},\"min_proto\":{},\
                             \"client_proto\":{}}}\n",
                            sharing_server::PROTO_VERSION,
                            sharing_server::MIN_PROTO,
                            sharing_server::PROTO_VERSION,
                        )
                    } else if line.contains("\"ping\"") {
                        "{\"ok\":true,\"type\":\"pong\"}\n".to_string()
                    } else {
                        // A job: stall silently. The connection stays
                        // open — slow, not dead.
                        while !conn_flag.load(Ordering::SeqCst) {
                            std::thread::sleep(std::time::Duration::from_millis(25));
                        }
                        return;
                    };
                    if writer.write_all(reply.as_bytes()).is_err() {
                        return;
                    }
                }
            });
        }
    });
    (addr, stop)
}

#[test]
fn slow_but_alive_worker_times_out_and_work_lands_on_the_survivor() {
    let single = daemon();
    let reference = raw_sweep(single.local_addr(), || {});
    single.stop();

    let (slow_addr, stop_staller) = stalling_worker();
    let real = daemon();
    let coord = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 256,
        remote_workers: vec![slow_addr.to_string(), real.local_addr().to_string()],
        // Short enough that stalled exchanges time out quickly; the
        // staller burns its retry budget, then its points re-queue.
        job_timeout_ms: 300,
        dispatch_retries: 1,
        ping_interval_ms: 100,
        ..ServerConfig::default()
    })
    .expect("bind coordinator");

    let fanned = raw_sweep(coord.local_addr(), || {});
    assert_eq!(
        fanned, reference,
        "a stalled worker must not change a single byte"
    );

    let text = metrics_text(coord.local_addr());
    assert!(
        sample(&text, "ssimd_dispatch_retries_total").is_some_and(|n| n >= 1.0),
        "timeouts on the stalled worker must be counted as retries: {text}"
    );
    // The staller answered every health probe: it is slow, not dead, so
    // the pool still counts both workers healthy.
    assert_eq!(sample(&text, "ssimd_workers_healthy"), Some(2.0), "{text}");

    coord.stop();
    real.stop();
    stop_staller.store(true, std::sync::atomic::Ordering::SeqCst);
    // Unblock the staller's accept loop so its thread can exit.
    let _ = TcpStream::connect(slow_addr);
}

#[test]
fn coordinator_scrape_federates_worker_expositions_under_instance_labels() {
    let w1 = daemon();
    let w2 = daemon();
    let coord = coordinator(vec![
        w1.local_addr().to_string(),
        w2.local_addr().to_string(),
    ]);

    let text = metrics_text(coord.local_addr());
    // The coordinator's own samples stay bare, so existing dashboards
    // and exact greps keep working...
    assert!(sample(&text, "ssimd_queue_depth").is_some(), "{text}");
    assert!(text.contains("ssimd_build_info{"), "{text}");
    // ...and each healthy worker's full exposition rides along in the
    // same scrape under its instance label.
    for k in 0..2 {
        let depth = format!("ssimd_queue_depth{{instance=\"worker:{k}\"}}");
        assert_eq!(sample(&text, &depth), Some(0.0), "{text}");
        let uptime = format!("ssimd_uptime_seconds{{instance=\"worker:{k}\"}}");
        assert!(sample(&text, &uptime).is_some(), "{text}");
    }

    // A dead worker drops out of the scrape instead of failing it.
    w2.stop();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let text = metrics_text(coord.local_addr());
        if !text.contains("instance=\"worker:1\"") {
            assert!(text.contains("instance=\"worker:0\""), "{text}");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "dead worker still federated: {text}"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    }

    coord.stop();
    w1.stop();
}

#[test]
fn traced_job_yields_one_merged_trace_with_coordinator_and_worker_tracks() {
    use sharing_server::{Client, Job, JobWorkload, RunJob};
    const TRACE_ID: u64 = 31337;

    let w1 = daemon();
    let w2 = daemon();
    let path = std::env::temp_dir().join(format!(
        "ssimd-test-merged-{}.trace.jsonl",
        std::process::id()
    ));
    let coord = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 256,
        remote_workers: vec![w1.local_addr().to_string(), w2.local_addr().to_string()],
        ping_interval_ms: 100,
        trace_path: Some(path.to_string_lossy().into_owned()),
        ..ServerConfig::default()
    })
    .expect("bind coordinator");

    let mut client = Client::connect(coord.local_addr()).unwrap();
    client.hello().unwrap();
    let lines = client
        .submit_all_traced(
            Job::Run(RunJob {
                workload: JobWorkload::Benchmark(sharing_trace::Benchmark::Gcc),
                slices: 2,
                banks: 4,
                len: 2_000,
                seed: 9,
            }),
            Some(TRACE_ID),
        )
        .unwrap();

    // The traced submit streams a `spans` line ahead of the final reply.
    let last = lines.last().expect("job produced replies");
    assert_eq!(last.get("ok").and_then(Json::as_bool), Some(true), "{last}");
    assert_eq!(last.get("type").and_then(Json::as_str), Some("result"));
    let spans_lines: Vec<_> = lines[..lines.len() - 1]
        .iter()
        .filter(|v| v.get("type").and_then(Json::as_str) == Some("spans"))
        .collect();
    assert!(!spans_lines.is_empty(), "no spans line before the result");
    assert_eq!(
        spans_lines[0].get("trace").and_then(Json::as_int),
        Some(i128::from(TRACE_ID))
    );

    // Stopping the coordinator drains the streaming sink; the one file
    // then holds the whole distributed story under the trace id:
    // coordinator queue/execute span, its dispatch span (track 1000+k),
    // and the worker's relayed execution span (track 2000+k).
    coord.stop();
    w1.stop();
    w2.stop();
    let text = std::fs::read_to_string(&path).expect("streamed trace file");
    let mut tids = std::collections::HashSet::new();
    let mut traced = 0usize;
    for line in text.lines() {
        let v = Json::parse(line).expect("every streamed line is complete JSON");
        if v.get("args")
            .and_then(|a| a.get("trace"))
            .and_then(Json::as_int)
            == Some(i128::from(TRACE_ID))
        {
            traced += 1;
            tids.insert(v.get("tid").and_then(Json::as_int).unwrap_or(-1));
        }
    }
    assert!(
        traced >= 3,
        "want coordinator + dispatch + relayed worker spans, got {traced}:\n{text}"
    );
    assert!(
        tids.iter().any(|t| (1000..1002).contains(t)),
        "no dispatch-track span: {tids:?}"
    );
    assert!(
        tids.iter().any(|t| (2000..2002).contains(t)),
        "no relayed worker-track span: {tids:?}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn coordinator_refuses_to_start_without_reachable_workers() {
    // Reserve an address that is then closed again: nothing listens there.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let err = match Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_capacity: 4,
        cache_capacity: 16,
        remote_workers: vec![dead.clone()],
        ..ServerConfig::default()
    }) {
        Ok(_) => panic!("registration against a dead worker must fail"),
        Err(e) => e,
    };
    assert!(err.to_string().contains(&dead), "{err}");
}
