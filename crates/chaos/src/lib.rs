//! sharing-chaos — seeded, replayable fault injection for the ssimd fleet.
//!
//! The core engine already meets a bit-for-bit replay bar: same trace,
//! same shape, same bytes out. This crate holds the *fleet* code
//! (coordinator dispatch, job queue admission, cache persistence, the
//! HTTP front door) to the same standard under failure: every fault a
//! run injects is drawn from a [`FaultPlan`] — a seed plus a list of
//! rules — and the decision for any injection point is a pure function
//! of `(plan seed, rule index, call index)`. Two runs of the same
//! workload under the same plan therefore produce the same injection
//! schedule, no matter how threads interleave.
//!
//! ```text
//!  FaultPlan (JSON) ──arm──▶ ChaosHooks (process-global)
//!        │                        │
//!        │        dispatch.rs ────┤ drop_conn / slow_read / slow_write
//!        │        register() ─────┤ partition (connects refused)
//!        │        server.rs ──────┤ queue_full_storm (admission refused)
//!        │        cache load ─────┤ corrupt_cache_file (bit-flip/truncate)
//!        │        http accept ────┤ drop_conn
//!        │        http read ──────┤ slow_read / drop_conn
//!        └──────▶ `ssim chaos` ───┘ sigkill_worker (driver kills a child)
//! ```
//!
//! Everything that injects is gated on the crate's `enabled` feature
//! (on by default). Built with `default-features = false`, every hook
//! is an empty inline function and the seams cost nothing, mirroring
//! how `sharing-obs` compiles out.
//!
//! # Example
//!
//! ```
//! use sharing_chaos::{FaultKind, FaultPlan};
//!
//! let text = r#"{"seed":7,"rules":[
//!     {"target":"*","kind":"drop_conn","nth":10}
//! ]}"#;
//! let plan = FaultPlan::parse(text).unwrap();
//! assert_eq!(plan.rules[0].kind, FaultKind::DropConn);
//! // Printable back out, so any run is reproducible from its plan.
//! let round = FaultPlan::parse(&plan.to_json_string()).unwrap();
//! assert_eq!(plan, round);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hooks;
mod plan;

pub use hooks::{hooks, ChaosHooks, Injection, IoFault, PLAN_ENV, SCHEDULE_ENV};
pub use plan::{FaultKind, FaultPlan, FaultRule};
