//! The process-global injection handle the fleet seams call into.
//!
//! Seams (dispatch exchanges, connects, queue admission, cache reload,
//! HTTP accept/read) ask the [`ChaosHooks`] singleton what to do. When
//! no plan is armed the answer is a single relaxed atomic load; when
//! the crate is built without the `enabled` feature every method is an
//! inline no-op and the seams cost nothing.
//!
//! Determinism contract: each rule owns a call counter per armed plan.
//! A seam call that matches a rule bumps that counter and asks
//! [`FaultPlan::fires`], which is pure in `(seed, rule, n)`. Two runs
//! that present the same sequence of matching calls therefore inject
//! at the same positions, no matter how threads interleave — and the
//! injection log ([`ChaosHooks::schedule`]) is sorted by `(rule, n)` so
//! it diffs cleanly across runs.

use crate::plan::{FaultKind, FaultPlan};

/// Environment variable holding an inline fault-plan JSON; a daemon
/// that calls [`ChaosHooks::arm_from_env`] arms itself from it.
pub const PLAN_ENV: &str = "SSIM_CHAOS_PLAN";

/// Environment variable naming a file the injection schedule should be
/// written to when the run finishes (see [`ChaosHooks::write_schedule`]).
pub const SCHEDULE_ENV: &str = "SSIM_CHAOS_SCHEDULE";

/// What an I/O seam should do right now.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoFault {
    /// No fault — proceed normally.
    Pass,
    /// Tear the connection down (dispatch: forget the worker conn;
    /// HTTP: close the socket without replying).
    Drop,
    /// Sleep this long first, then proceed — the peer is slow, not dead.
    Delay(std::time::Duration),
}

/// One injected fault, as recorded in the schedule log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Injection {
    /// Index of the rule that fired (position in `FaultPlan::rules`).
    pub rule: usize,
    /// The 1-indexed matching-call count at which it fired.
    pub n: u64,
    /// The fault kind injected.
    pub kind: FaultKind,
    /// The rule's target pattern (stable across runs, unlike the seam
    /// context, which may hold an ephemeral address).
    pub target: String,
    /// The seam context the fault landed on (worker address, `queue`,
    /// `cache`, `http`, or `step:<k>` for driver-injected kills).
    pub ctx: String,
}

impl Injection {
    /// One stable, diffable line: `rule=1 n=3 kind=partition target=*`.
    ///
    /// Deliberately excludes `ctx`: the context can hold an ephemeral
    /// worker address or a thread-timing-dependent victim, while
    /// `(rule, n, kind, target)` is pure in the plan and the sequence
    /// of matching calls — so two runs of the same plan over the same
    /// workload produce byte-identical schedule files.
    #[must_use]
    pub fn line(&self) -> String {
        format!(
            "rule={} n={} kind={} target={}",
            self.rule, self.n, self.kind, self.target
        )
    }
}

#[cfg(feature = "enabled")]
pub use real::{hooks, ChaosHooks};

#[cfg(not(feature = "enabled"))]
pub use stub::{hooks, ChaosHooks};

#[cfg(feature = "enabled")]
mod real {
    use super::{FaultKind, FaultPlan, Injection, IoFault, PLAN_ENV, SCHEDULE_ENV};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::Instant;

    /// Counter bumped once per injection regardless of kind.
    const TOTAL_COUNTER: &str = "chaos_injections_total";

    /// Per-plan armed state: the plan, one call counter and one window
    /// deadline per rule, and the injection log.
    struct Armed {
        plan: FaultPlan,
        counters: Vec<AtomicU64>,
        windows: Vec<Mutex<Option<Instant>>>,
        log: Mutex<Vec<Injection>>,
    }

    impl Armed {
        fn new(plan: FaultPlan) -> Armed {
            let n = plan.rules.len();
            Armed {
                plan,
                counters: (0..n).map(|_| AtomicU64::new(0)).collect(),
                windows: (0..n).map(|_| Mutex::new(None)).collect(),
                log: Mutex::new(Vec::new()),
            }
        }

        /// Bumps rule `i`'s matching-call counter, returning the
        /// 1-indexed call number.
        fn bump(&self, i: usize) -> u64 {
            self.counters[i].fetch_add(1, Ordering::Relaxed) + 1
        }

        fn record(&self, i: usize, n: u64, ctx: &str) {
            let rule = &self.plan.rules[i];
            sharing_obs::counter(rule.kind.counter_name()).inc();
            sharing_obs::counter(TOTAL_COUNTER).inc();
            self.log.lock().unwrap().push(Injection {
                rule: i,
                n,
                kind: rule.kind,
                target: rule.target.clone(),
                ctx: ctx.to_string(),
            });
        }

        /// Whether rule `i`'s window is open right now.
        fn window_open(&self, i: usize) -> bool {
            let mut w = self.windows[i].lock().unwrap();
            match *w {
                Some(deadline) if Instant::now() < deadline => true,
                Some(_) => {
                    *w = None;
                    false
                }
                None => false,
            }
        }

        fn open_window(&self, i: usize) {
            let deadline = Instant::now() + self.plan.rules[i].duration();
            *self.windows[i].lock().unwrap() = Some(deadline);
        }
    }

    /// The process-global chaos handle. Obtain it with [`hooks()`];
    /// there is exactly one per process, like the sharing-obs registry.
    pub struct ChaosHooks {
        on: AtomicBool,
        state: Mutex<Option<Arc<Armed>>>,
    }

    static HOOKS: ChaosHooks = ChaosHooks {
        on: AtomicBool::new(false),
        state: Mutex::new(None),
    };

    /// The process-global [`ChaosHooks`] singleton.
    #[must_use]
    pub fn hooks() -> &'static ChaosHooks {
        &HOOKS
    }

    impl ChaosHooks {
        /// Arms a plan: all seams start consulting it. Rule counters
        /// start from zero, so re-arming the same plan replays the
        /// same schedule.
        pub fn arm(&self, plan: FaultPlan) {
            *self.state.lock().unwrap() = Some(Arc::new(Armed::new(plan)));
            self.on.store(true, Ordering::Release);
        }

        /// Disarms: seams go back to the single-atomic-load fast path.
        pub fn disarm(&self) {
            self.on.store(false, Ordering::Release);
            *self.state.lock().unwrap() = None;
        }

        /// Whether a plan is currently armed.
        #[must_use]
        pub fn is_armed(&self) -> bool {
            self.on.load(Ordering::Acquire)
        }

        /// Arms from the [`PLAN_ENV`] environment variable if set.
        /// Returns `Ok(true)` if a plan was armed, `Ok(false)` if the
        /// variable is absent.
        ///
        /// # Errors
        ///
        /// Returns the parse/validation message for a malformed plan.
        pub fn arm_from_env(&self) -> Result<bool, String> {
            match std::env::var(PLAN_ENV) {
                Ok(text) => {
                    let plan = FaultPlan::parse(&text).map_err(|e| format!("{PLAN_ENV}: {e}"))?;
                    self.arm(plan);
                    Ok(true)
                }
                Err(_) => Ok(false),
            }
        }

        fn armed(&self) -> Option<Arc<Armed>> {
            if !self.on.load(Ordering::Acquire) {
                return None;
            }
            self.state.lock().unwrap().clone()
        }

        /// Number of faults injected since the plan was armed.
        #[must_use]
        pub fn injected(&self) -> u64 {
            self.armed()
                .map_or(0, |a| a.log.lock().unwrap().len() as u64)
        }

        /// The injection log, sorted by `(rule, n)` so it is stable
        /// across thread interleavings and diffs cleanly between runs.
        #[must_use]
        pub fn schedule(&self) -> Vec<Injection> {
            let Some(armed) = self.armed() else {
                return Vec::new();
            };
            let mut log = armed.log.lock().unwrap().clone();
            log.sort_by_key(|i| (i.rule, i.n));
            log
        }

        /// The schedule as diffable text, one [`Injection::line`] per row.
        #[must_use]
        pub fn schedule_lines(&self) -> String {
            let mut out = String::new();
            for inj in self.schedule() {
                out.push_str(&inj.line());
                out.push('\n');
            }
            out
        }

        /// Writes the schedule to `path` (used by the CI smoke to diff
        /// two runs of the same plan).
        ///
        /// # Errors
        ///
        /// Propagates the underlying file write error.
        pub fn write_schedule(&self, path: &str) -> std::io::Result<()> {
            std::fs::write(path, self.schedule_lines())
        }

        /// Writes the schedule to the [`SCHEDULE_ENV`] path if that
        /// variable is set. Errors are reported to stderr, not fatal.
        pub fn write_schedule_from_env(&self) {
            if let Ok(path) = std::env::var(SCHEDULE_ENV) {
                if let Err(e) = self.write_schedule(&path) {
                    eprintln!("chaos: writing schedule to {path}: {e}");
                }
            }
        }

        /// Evaluates the I/O-fault kinds in `kinds` against context
        /// `ctx`. First firing rule wins; matching rules before it
        /// still consume a call number, keeping their streams pure.
        fn eval_io(&self, ctx: &str, kinds: &[FaultKind]) -> IoFault {
            let Some(armed) = self.armed() else {
                return IoFault::Pass;
            };
            for (i, rule) in armed.plan.rules.iter().enumerate() {
                if !kinds.contains(&rule.kind) || !rule.matches(ctx) {
                    continue;
                }
                let n = armed.bump(i);
                if armed.plan.fires(i, n) {
                    armed.record(i, n, ctx);
                    return match rule.kind {
                        FaultKind::DropConn => IoFault::Drop,
                        FaultKind::SlowRead | FaultKind::SlowWrite => {
                            IoFault::Delay(rule.duration())
                        }
                        _ => IoFault::Pass,
                    };
                }
            }
            IoFault::Pass
        }

        /// Windowed kinds (partition, queue-full storm): every matching
        /// call consumes a call number; a firing call records an
        /// injection and (re)opens the window; calls during an open
        /// window are refused without a new log entry.
        fn eval_window(&self, ctx: &str, kind: FaultKind) -> bool {
            let Some(armed) = self.armed() else {
                return false;
            };
            for (i, rule) in armed.plan.rules.iter().enumerate() {
                if rule.kind != kind || !rule.matches(ctx) {
                    continue;
                }
                let n = armed.bump(i);
                if armed.plan.fires(i, n) {
                    armed.record(i, n, ctx);
                    armed.open_window(i);
                    return true;
                }
                if armed.window_open(i) {
                    return true;
                }
            }
            false
        }

        /// Dispatch seam: called once per worker exchange with the
        /// worker address as context. `Drop` means forget the
        /// connection; `Delay` means the worker is slow this exchange.
        #[must_use]
        pub fn on_dispatch_exchange(&self, worker_addr: &str) -> IoFault {
            self.eval_io(
                worker_addr,
                &[
                    FaultKind::DropConn,
                    FaultKind::SlowRead,
                    FaultKind::SlowWrite,
                ],
            )
        }

        /// Connect seam (`WorkerPool::register`): returns `true` if
        /// this connect attempt must be refused — either because a
        /// partition rule fires on it or a partition window is open.
        #[must_use]
        pub fn connect_fault(&self, worker_addr: &str) -> bool {
            self.eval_window(worker_addr, FaultKind::Partition)
        }

        /// Passive partition check for the health loop: `true` while a
        /// partition window is open for this address. Does not consume
        /// a call number, so time-driven probes cannot perturb the
        /// schedule.
        #[must_use]
        pub fn partitioned(&self, worker_addr: &str) -> bool {
            let Some(armed) = self.armed() else {
                return false;
            };
            armed.plan.rules.iter().enumerate().any(|(i, rule)| {
                rule.kind == FaultKind::Partition
                    && rule.matches(worker_addr)
                    && armed.window_open(i)
            })
        }

        /// Queue-admission seam (context `"queue"`): `true` means
        /// answer `queue_full` regardless of actual depth.
        #[must_use]
        pub fn admission_fault(&self) -> bool {
            self.eval_window("queue", FaultKind::QueueFullStorm)
        }

        /// Cache-reload seam (context `"cache"`): if a
        /// `corrupt_cache_file` rule fires, mangles the file at `path`
        /// in place — a deterministic bit-flip or truncation drawn
        /// from the rule's decision RNG — and returns `true`.
        #[must_use]
        pub fn mangle_cache_file(&self, path: &str) -> bool {
            let Some(armed) = self.armed() else {
                return false;
            };
            for (i, rule) in armed.plan.rules.iter().enumerate() {
                if rule.kind != FaultKind::CorruptCacheFile || !rule.matches("cache") {
                    continue;
                }
                let n = armed.bump(i);
                if !armed.plan.fires(i, n) {
                    continue;
                }
                let Ok(mut bytes) = std::fs::read(path) else {
                    continue; // no file to corrupt; the call still counted
                };
                if bytes.is_empty() {
                    continue;
                }
                let mut rng = armed.plan.decision_rng(i, n);
                if rng.bool(0.5) {
                    let keep = rng.below(bytes.len() as u64) as usize;
                    bytes.truncate(keep);
                } else {
                    let idx = rng.below(bytes.len() as u64) as usize;
                    let bit = rng.below(8) as u8;
                    bytes[idx] ^= 1 << bit;
                }
                if std::fs::write(path, &bytes).is_ok() {
                    armed.record(i, n, "cache");
                    return true;
                }
            }
            false
        }

        /// HTTP accept seam (context `"http"`): `Drop` means close the
        /// just-accepted connection without serving it.
        #[must_use]
        pub fn on_http_accept(&self) -> IoFault {
            self.eval_io("http", &[FaultKind::DropConn])
        }

        /// HTTP read seam (context `"http"`): `Delay` stalls the read,
        /// `Drop` closes mid-request.
        #[must_use]
        pub fn on_http_read(&self) -> IoFault {
            self.eval_io("http", &[FaultKind::SlowRead, FaultKind::DropConn])
        }

        /// Driver seam: called by `ssim chaos` before mix step `step`
        /// (1-indexed) with the worker count. If a `sigkill_worker`
        /// rule fires, returns the victim's worker index — parsed from
        /// a `worker:<k>` target, else `n % workers`.
        #[must_use]
        pub fn sigkill_step(&self, step: u64, workers: usize) -> Option<usize> {
            let armed = self.armed()?;
            if workers == 0 {
                return None;
            }
            for (i, rule) in armed.plan.rules.iter().enumerate() {
                if rule.kind != FaultKind::SigkillWorker {
                    continue;
                }
                let n = armed.bump(i);
                if !armed.plan.fires(i, n) {
                    continue;
                }
                let victim = rule
                    .target
                    .strip_prefix("worker:")
                    .and_then(|k| k.parse::<usize>().ok())
                    .unwrap_or((n % workers as u64) as usize)
                    % workers;
                armed.record(i, n, &format!("step:{step}"));
                return Some(victim);
            }
            None
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod stub {
    use super::{FaultPlan, Injection, IoFault};

    /// Compiled-out chaos handle: every method is an inline no-op.
    pub struct ChaosHooks;

    static HOOKS: ChaosHooks = ChaosHooks;

    /// The process-global [`ChaosHooks`] singleton (no-op build).
    #[must_use]
    pub fn hooks() -> &'static ChaosHooks {
        &HOOKS
    }

    #[allow(clippy::unused_self, clippy::missing_const_for_fn)]
    impl ChaosHooks {
        /// No-op: chaos is compiled out.
        pub fn arm(&self, _plan: FaultPlan) {}
        /// No-op: chaos is compiled out.
        pub fn disarm(&self) {}
        /// Always `false`: chaos is compiled out.
        #[must_use]
        pub fn is_armed(&self) -> bool {
            false
        }
        /// Always `Ok(false)`: chaos is compiled out.
        ///
        /// # Errors
        ///
        /// Never errors in the no-op build.
        pub fn arm_from_env(&self) -> Result<bool, String> {
            Ok(false)
        }
        /// Always 0: chaos is compiled out.
        #[must_use]
        pub fn injected(&self) -> u64 {
            0
        }
        /// Always empty: chaos is compiled out.
        #[must_use]
        pub fn schedule(&self) -> Vec<Injection> {
            Vec::new()
        }
        /// Always empty: chaos is compiled out.
        #[must_use]
        pub fn schedule_lines(&self) -> String {
            String::new()
        }
        /// Writes an empty schedule.
        ///
        /// # Errors
        ///
        /// Propagates the underlying file write error.
        pub fn write_schedule(&self, path: &str) -> std::io::Result<()> {
            std::fs::write(path, "")
        }
        /// No-op: chaos is compiled out.
        pub fn write_schedule_from_env(&self) {}
        /// Always `Pass`: chaos is compiled out.
        #[inline]
        #[must_use]
        pub fn on_dispatch_exchange(&self, _worker_addr: &str) -> IoFault {
            IoFault::Pass
        }
        /// Always `false`: chaos is compiled out.
        #[inline]
        #[must_use]
        pub fn connect_fault(&self, _worker_addr: &str) -> bool {
            false
        }
        /// Always `false`: chaos is compiled out.
        #[inline]
        #[must_use]
        pub fn partitioned(&self, _worker_addr: &str) -> bool {
            false
        }
        /// Always `false`: chaos is compiled out.
        #[inline]
        #[must_use]
        pub fn admission_fault(&self) -> bool {
            false
        }
        /// Always `false`: chaos is compiled out.
        #[inline]
        #[must_use]
        pub fn mangle_cache_file(&self, _path: &str) -> bool {
            false
        }
        /// Always `Pass`: chaos is compiled out.
        #[inline]
        #[must_use]
        pub fn on_http_accept(&self) -> IoFault {
            IoFault::Pass
        }
        /// Always `Pass`: chaos is compiled out.
        #[inline]
        #[must_use]
        pub fn on_http_read(&self) -> IoFault {
            IoFault::Pass
        }
        /// Always `None`: chaos is compiled out.
        #[inline]
        #[must_use]
        pub fn sigkill_step(&self, _step: u64, _workers: usize) -> Option<usize> {
            None
        }
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use crate::plan::{FaultRule, DEFAULT_DURATION_MS};

    /// The global handle is shared across tests in this binary, so each
    /// test runs under this lock and disarms when done.
    fn with_plan<R>(plan: FaultPlan, f: impl FnOnce(&ChaosHooks) -> R) -> R {
        use std::sync::{Mutex, MutexGuard, OnceLock};
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        let _gate: MutexGuard<'_, ()> = GATE
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let h = hooks();
        h.arm(plan);
        let out = f(h);
        h.disarm();
        out
    }

    #[test]
    fn disarmed_hooks_pass_everything() {
        let h = hooks();
        assert!(!h.is_armed());
        assert_eq!(h.on_dispatch_exchange("w"), IoFault::Pass);
        assert!(!h.connect_fault("w"));
        assert!(!h.admission_fault());
        assert_eq!(h.injected(), 0);
    }

    #[test]
    fn nth_drop_fires_on_schedule_and_logs() {
        let plan = FaultPlan::new(1).with_rule(FaultRule::nth("*", FaultKind::DropConn, 3));
        with_plan(plan, |h| {
            let faults: Vec<IoFault> = (0..9).map(|_| h.on_dispatch_exchange("w1")).collect();
            let drops = faults.iter().filter(|&&f| f == IoFault::Drop).count();
            assert_eq!(drops, 3, "nth=3 over 9 calls");
            assert_eq!(faults[2], IoFault::Drop);
            assert_eq!(faults[5], IoFault::Drop);
            assert_eq!(faults[8], IoFault::Drop);
            let sched = h.schedule();
            assert_eq!(sched.len(), 3);
            assert_eq!(sched.iter().map(|i| i.n).collect::<Vec<_>>(), vec![3, 6, 9]);
            assert!(sched[0].line().contains("kind=drop_conn"));
        });
    }

    #[test]
    fn slow_faults_carry_the_rule_duration() {
        let plan =
            FaultPlan::new(2).with_rule(FaultRule::nth("*", FaultKind::SlowRead, 2).lasting_ms(80));
        with_plan(plan, |h| {
            assert_eq!(h.on_dispatch_exchange("w"), IoFault::Pass);
            assert_eq!(
                h.on_dispatch_exchange("w"),
                IoFault::Delay(std::time::Duration::from_millis(80))
            );
        });
    }

    #[test]
    fn partition_window_blocks_connects_then_expires() {
        let plan = FaultPlan::new(3)
            .with_rule(FaultRule::nth("*", FaultKind::Partition, 2).lasting_ms(60));
        with_plan(plan, |h| {
            assert!(!h.connect_fault("w"), "call 1 passes");
            assert!(h.connect_fault("w"), "call 2 fires");
            assert!(h.partitioned("w"), "window open");
            assert!(h.connect_fault("w"), "call 3 refused inside the window");
            assert_eq!(h.injected(), 1, "window refusals are not new injections");
            std::thread::sleep(std::time::Duration::from_millis(90));
            assert!(!h.partitioned("w"), "window expired");
            assert!(h.connect_fault("w"), "call 4 fires again (nth=2)");
            assert_eq!(h.injected(), 2);
        });
    }

    #[test]
    fn targeted_rules_ignore_other_contexts() {
        let plan = FaultPlan::new(4).with_rule(FaultRule::nth("w1", FaultKind::DropConn, 1));
        with_plan(plan, |h| {
            assert_eq!(h.on_dispatch_exchange("w2"), IoFault::Pass);
            assert_eq!(h.on_dispatch_exchange("w1"), IoFault::Drop);
        });
    }

    #[test]
    fn rearming_replays_the_same_schedule() {
        let plan =
            FaultPlan::new(5).with_rule(FaultRule::probability("*", FaultKind::DropConn, 0.4));
        let run = |h: &ChaosHooks| {
            (0..40)
                .map(|_| h.on_dispatch_exchange("w") == IoFault::Drop)
                .collect::<Vec<_>>()
        };
        let (a, lines_a) = with_plan(plan.clone(), |h| (run(h), h.schedule_lines()));
        let (b, lines_b) = with_plan(plan, |h| (run(h), h.schedule_lines()));
        assert_eq!(a, b, "same plan, same call sequence, same faults");
        assert_eq!(lines_a, lines_b, "schedules diff clean");
    }

    #[test]
    fn cache_mangling_is_deterministic() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("chaos-hooks-mangle-{}.bin", std::process::id()));
        let path = path.to_str().unwrap().to_string();
        let original: Vec<u8> = (0..=255).collect();
        let plan =
            FaultPlan::new(6).with_rule(FaultRule::nth("cache", FaultKind::CorruptCacheFile, 1));
        let mangle_once = |plan: FaultPlan| {
            std::fs::write(&path, &original).unwrap();
            with_plan(plan, |h| {
                assert!(h.mangle_cache_file(&path));
                std::fs::read(&path).unwrap()
            })
        };
        let a = mangle_once(plan.clone());
        let b = mangle_once(plan);
        assert_ne!(a, original, "the file was actually corrupted");
        assert_eq!(a, b, "same plan mangles the same bytes");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sigkill_targets_parse_worker_index() {
        let plan =
            FaultPlan::new(7).with_rule(FaultRule::nth("worker:1", FaultKind::SigkillWorker, 2));
        with_plan(plan, |h| {
            assert_eq!(h.sigkill_step(1, 3), None);
            assert_eq!(h.sigkill_step(2, 3), Some(1));
            assert_eq!(h.sigkill_step(3, 3), None);
            assert_eq!(h.sigkill_step(4, 3), Some(1));
            let sched = h.schedule();
            assert_eq!(sched.len(), 2);
            assert_eq!(sched[1].ctx, "step:4");
        });
    }

    #[test]
    fn queue_storm_refuses_admission_for_a_window() {
        let plan = FaultPlan::new(8).with_rule(
            FaultRule::nth("queue", FaultKind::QueueFullStorm, 1).lasting_ms(DEFAULT_DURATION_MS),
        );
        with_plan(plan, |h| {
            assert!(h.admission_fault(), "nth=1 fires immediately");
            assert!(h.admission_fault(), "window still open");
        });
    }
}
