//! Fault plans: the JSON-round-trippable description of a chaos run.

use sharing_json::{json_struct, FromJson, Json, JsonError, ToJson};
use sharing_trace::Rng64;

/// What kind of failure a rule injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Tear down a worker connection mid-exchange (dispatch) or drop an
    /// accepted HTTP connection on the floor.
    DropConn,
    /// Injected latency before a read — the peer is slow, not dead.
    SlowRead,
    /// Injected latency before a write — the peer is slow, not dead.
    SlowWrite,
    /// The coordinator↔worker link refuses new connects for a window
    /// (`duration_ms`), so health probes and reconnects fail.
    Partition,
    /// Queue admission answers `queue_full` for a window (`duration_ms`)
    /// regardless of actual depth.
    QueueFullStorm,
    /// Bit-flip or truncate the persisted cache file before it is
    /// reloaded; the daemon must fall back to a cold cache.
    CorruptCacheFile,
    /// The chaos driver SIGKILLs a worker daemon (only meaningful for
    /// `ssim chaos`, which owns the child processes).
    SigkillWorker,
}

/// Every fault kind, in declaration order (stable rule indices).
pub const ALL_FAULT_KINDS: [FaultKind; 7] = [
    FaultKind::DropConn,
    FaultKind::SlowRead,
    FaultKind::SlowWrite,
    FaultKind::Partition,
    FaultKind::QueueFullStorm,
    FaultKind::CorruptCacheFile,
    FaultKind::SigkillWorker,
];

impl FaultKind {
    /// The kind's snake_case wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::DropConn => "drop_conn",
            FaultKind::SlowRead => "slow_read",
            FaultKind::SlowWrite => "slow_write",
            FaultKind::Partition => "partition",
            FaultKind::QueueFullStorm => "queue_full_storm",
            FaultKind::CorruptCacheFile => "corrupt_cache_file",
            FaultKind::SigkillWorker => "sigkill_worker",
        }
    }

    /// Looks a kind up by its wire name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<FaultKind> {
        ALL_FAULT_KINDS.iter().copied().find(|k| k.name() == name)
    }

    /// The process-global observability counter this kind increments on
    /// every injection (exported through `sharing_obs::prometheus_text`).
    #[must_use]
    pub fn counter_name(self) -> &'static str {
        match self {
            FaultKind::DropConn => "chaos_drop_conn_total",
            FaultKind::SlowRead => "chaos_slow_read_total",
            FaultKind::SlowWrite => "chaos_slow_write_total",
            FaultKind::Partition => "chaos_partition_total",
            FaultKind::QueueFullStorm => "chaos_queue_full_storm_total",
            FaultKind::CorruptCacheFile => "chaos_corrupt_cache_file_total",
            FaultKind::SigkillWorker => "chaos_sigkill_worker_total",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl ToJson for FaultKind {
    fn to_json(&self) -> Json {
        Json::Str(self.name().to_string())
    }
}

impl FromJson for FaultKind {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let name = v
            .as_str()
            .ok_or_else(|| JsonError::msg(format!("expected fault kind name, got {v}")))?;
        FaultKind::from_name(name)
            .ok_or_else(|| JsonError::msg(format!("unknown fault kind `{name}`")))
    }
}

/// One injection rule: where, what, and on which calls.
///
/// A rule fires on calls that match its `target`, either every `nth`
/// matching call (1-indexed) or with `probability` per call — exactly
/// one of the two must be set. `duration_ms` is the injected delay for
/// slow faults and the window length for `partition` /
/// `queue_full_storm`.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultRule {
    /// Which seam contexts this rule matches: `"*"` for all, a worker
    /// address for dispatch/connect seams, `"queue"`, `"cache"`,
    /// `"http"`, or `"worker:<index>"` for the sigkill driver.
    pub target: String,
    /// The failure to inject.
    pub kind: FaultKind,
    /// Per-matching-call injection probability in `[0, 1]`.
    pub probability: Option<f64>,
    /// Fire on every nth matching call (1-indexed: `nth: 3` fires on
    /// calls 3, 6, 9, …).
    pub nth: Option<u64>,
    /// Delay length (slow faults) or window length (partition/storm) in
    /// milliseconds. Defaults to [`DEFAULT_DURATION_MS`].
    pub duration_ms: Option<u64>,
}

json_struct!(FaultRule { target, kind } defaults { probability, nth, duration_ms });

/// `duration_ms` used when a rule leaves it unset.
pub const DEFAULT_DURATION_MS: u64 = 250;

impl FaultRule {
    /// A rule firing on every `nth` matching call.
    #[must_use]
    pub fn nth(target: impl Into<String>, kind: FaultKind, nth: u64) -> FaultRule {
        FaultRule {
            target: target.into(),
            kind,
            probability: None,
            nth: Some(nth),
            duration_ms: None,
        }
    }

    /// A rule firing with `probability` per matching call.
    #[must_use]
    pub fn probability(target: impl Into<String>, kind: FaultKind, p: f64) -> FaultRule {
        FaultRule {
            target: target.into(),
            kind,
            probability: Some(p),
            nth: None,
            duration_ms: None,
        }
    }

    /// Sets the delay / window length.
    #[must_use]
    pub fn lasting_ms(mut self, ms: u64) -> FaultRule {
        self.duration_ms = Some(ms);
        self
    }

    /// The rule's delay / window length with the default applied.
    #[must_use]
    pub fn duration(&self) -> std::time::Duration {
        std::time::Duration::from_millis(self.duration_ms.unwrap_or(DEFAULT_DURATION_MS))
    }

    /// Whether this rule applies to a seam context string.
    #[must_use]
    pub fn matches(&self, ctx: &str) -> bool {
        self.target == "*" || self.target == ctx
    }
}

/// A complete fault plan: the seed every injection decision derives
/// from, plus the rules. Parse ↔ print round-trips, so any chaos run is
/// reproducible from its printed plan.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Master seed; all rule decisions derive from it.
    pub seed: u64,
    /// The injection rules, evaluated in order (first firing rule wins
    /// at seams where several kinds apply).
    pub rules: Vec<FaultRule>,
}

json_struct!(FaultPlan { seed, rules });

impl FaultPlan {
    /// An empty plan (nothing injects) with just a seed.
    #[must_use]
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Appends a rule.
    #[must_use]
    pub fn with_rule(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self
    }

    /// Parses a plan from JSON text and validates it.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON or an invalid rule.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let plan: FaultPlan = sharing_json::from_str(text).map_err(|e| e.to_string())?;
        plan.validate()?;
        Ok(plan)
    }

    /// Compact one-line JSON (environment-variable friendly).
    #[must_use]
    pub fn to_json_string(&self) -> String {
        sharing_json::to_string(self)
    }

    /// Pretty JSON for docs and plan files.
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        sharing_json::to_string_pretty(self)
    }

    /// Checks every rule: exactly one of `probability` / `nth`, a
    /// probability in `[0, 1]`, and a non-zero `nth`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first offending rule.
    pub fn validate(&self) -> Result<(), String> {
        for (i, rule) in self.rules.iter().enumerate() {
            match (rule.probability, rule.nth) {
                (Some(_), Some(_)) => {
                    return Err(format!(
                        "rule {i} ({}): set either `probability` or `nth`, not both",
                        rule.kind
                    ));
                }
                (None, None) => {
                    return Err(format!(
                        "rule {i} ({}): set `probability` or `nth`",
                        rule.kind
                    ));
                }
                (Some(p), None) if !(0.0..=1.0).contains(&p) => {
                    return Err(format!(
                        "rule {i} ({}): probability {p} outside [0, 1]",
                        rule.kind
                    ));
                }
                (None, Some(0)) => {
                    return Err(format!("rule {i} ({}): `nth` must be >= 1", rule.kind));
                }
                _ => {}
            }
            if rule.target.is_empty() {
                return Err(format!("rule {i} ({}): empty target", rule.kind));
            }
        }
        Ok(())
    }

    /// Whether rule `rule_idx` fires on its `n`th matching call
    /// (1-indexed). Pure in `(seed, rule_idx, n)` — thread interleaving
    /// cannot change the outcome, which is what makes schedules
    /// replayable.
    #[must_use]
    pub fn fires(&self, rule_idx: usize, n: u64) -> bool {
        let Some(rule) = self.rules.get(rule_idx) else {
            return false;
        };
        if let Some(nth) = rule.nth {
            return nth > 0 && n.is_multiple_of(nth);
        }
        if let Some(p) = rule.probability {
            return decision_rng(self.seed, rule_idx, n).bool(p);
        }
        false
    }

    /// The deterministic per-decision RNG for rule `rule_idx`, call `n` —
    /// also used to pick corruption offsets so the mangled bytes replay.
    #[must_use]
    pub fn decision_rng(&self, rule_idx: usize, n: u64) -> Rng64 {
        decision_rng(self.seed, rule_idx, n)
    }

    /// The example plan used in the README: partition on the 3rd
    /// connect, kill a worker at mix step 2, and drop every 7th
    /// dispatch exchange.
    #[must_use]
    pub fn example(seed: u64) -> FaultPlan {
        FaultPlan::new(seed)
            .with_rule(FaultRule::nth("*", FaultKind::DropConn, 7))
            .with_rule(FaultRule::nth("*", FaultKind::Partition, 3).lasting_ms(400))
            .with_rule(FaultRule::nth("*", FaultKind::SigkillWorker, 2))
    }

    /// The replay-exact plan `ssim chaos` and the CI smoke default to.
    ///
    /// Every rule is `nth`-based and the partition window (1 ms) is
    /// shorter than the minimum retry backoff, so a refused connect is
    /// always retried *after* the window closed: each partition firing
    /// adds exactly one extra register attempt, keeping every rule's
    /// matching-call count — and therefore the whole injection
    /// schedule — identical across two runs of the same job mix.
    /// Longer windows are great for soak testing but make the count of
    /// refused-and-retried calls depend on wall-clock timing.
    #[must_use]
    pub fn smoke(seed: u64) -> FaultPlan {
        FaultPlan::new(seed)
            .with_rule(FaultRule::nth("*", FaultKind::DropConn, 9))
            .with_rule(FaultRule::nth("*", FaultKind::Partition, 4).lasting_ms(1))
            .with_rule(FaultRule::nth("*", FaultKind::SigkillWorker, 2))
    }
}

/// One RNG per `(seed, rule, call)`: cheap (SplitMix64 seeding) and
/// order-free, so concurrent seams cannot perturb each other's draws.
fn decision_rng(seed: u64, rule_idx: usize, n: u64) -> Rng64 {
    let mix = seed
        ^ (rule_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ n.wrapping_mul(0xD1B5_4A32_D192_ED03);
    Rng64::seed_from_u64(mix)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan::new(42)
            .with_rule(FaultRule::nth("127.0.0.1:42115", FaultKind::DropConn, 5))
            .with_rule(FaultRule::probability("*", FaultKind::SlowRead, 0.25).lasting_ms(80))
            .with_rule(FaultRule::nth("queue", FaultKind::QueueFullStorm, 3).lasting_ms(200));
        let compact = FaultPlan::parse(&plan.to_json_string()).unwrap();
        let pretty = FaultPlan::parse(&plan.to_json_pretty()).unwrap();
        assert_eq!(plan, compact);
        assert_eq!(plan, pretty);
    }

    #[test]
    fn kinds_round_trip_by_name() {
        for k in ALL_FAULT_KINDS {
            assert_eq!(FaultKind::from_name(k.name()), Some(k));
        }
        assert_eq!(FaultKind::from_name("meteor_strike"), None);
    }

    #[test]
    fn validation_rejects_bad_rules() {
        let both = FaultPlan::new(1).with_rule(FaultRule {
            target: "*".into(),
            kind: FaultKind::DropConn,
            probability: Some(0.5),
            nth: Some(2),
            duration_ms: None,
        });
        assert!(both.validate().is_err(), "probability and nth together");
        let neither = FaultPlan::new(1).with_rule(FaultRule {
            target: "*".into(),
            kind: FaultKind::DropConn,
            probability: None,
            nth: None,
            duration_ms: None,
        });
        assert!(neither.validate().is_err(), "neither probability nor nth");
        let out_of_range =
            FaultPlan::new(1).with_rule(FaultRule::probability("*", FaultKind::SlowRead, 1.5));
        assert!(out_of_range.validate().is_err(), "probability > 1");
        let zeroth = FaultPlan::new(1).with_rule(FaultRule::nth("*", FaultKind::DropConn, 0));
        assert!(zeroth.validate().is_err(), "nth = 0");
    }

    #[test]
    fn nth_rules_fire_exactly_on_multiples() {
        let plan = FaultPlan::new(9).with_rule(FaultRule::nth("*", FaultKind::DropConn, 4));
        let fired: Vec<u64> = (1..=12).filter(|&n| plan.fires(0, n)).collect();
        assert_eq!(fired, vec![4, 8, 12]);
    }

    #[test]
    fn probability_decisions_are_pure_in_seed_rule_and_call() {
        let plan =
            FaultPlan::new(7).with_rule(FaultRule::probability("*", FaultKind::SlowWrite, 0.3));
        let a: Vec<bool> = (1..=200).map(|n| plan.fires(0, n)).collect();
        let b: Vec<bool> = (1..=200).map(|n| plan.fires(0, n)).collect();
        assert_eq!(a, b, "same (seed, rule, n) must decide identically");
        let hits = a.iter().filter(|&&x| x).count();
        assert!(
            (20..=100).contains(&hits),
            "p=0.3 over 200 calls fired {hits} times"
        );
        let other =
            FaultPlan::new(8).with_rule(FaultRule::probability("*", FaultKind::SlowWrite, 0.3));
        let c: Vec<bool> = (1..=200).map(|n| other.fires(0, n)).collect();
        assert_ne!(a, c, "a different seed must change the schedule");
    }

    #[test]
    fn target_matching_is_star_or_exact() {
        let rule = FaultRule::nth("127.0.0.1:1", FaultKind::DropConn, 1);
        assert!(rule.matches("127.0.0.1:1"));
        assert!(!rule.matches("127.0.0.1:2"));
        assert!(FaultRule::nth("*", FaultKind::DropConn, 1).matches("anything"));
    }

    #[test]
    fn example_plan_is_valid_and_prints() {
        let plan = FaultPlan::example(2014);
        assert!(plan.validate().is_ok());
        assert!(plan.to_json_pretty().contains("sigkill_worker"));
    }

    #[test]
    fn smoke_plan_is_valid_and_count_driven() {
        let plan = FaultPlan::smoke(2014);
        assert!(plan.validate().is_ok());
        // Replay-exactness rests on every rule being nth-based.
        assert!(plan.rules.iter().all(|r| r.nth.is_some()));
        let windows: Vec<u64> = plan
            .rules
            .iter()
            .filter(|r| r.kind == FaultKind::Partition)
            .map(|r| r.duration().as_millis() as u64)
            .collect();
        assert!(
            windows.iter().all(|&ms| ms < 25),
            "partition windows must close before the shortest retry backoff"
        );
    }
}
