//! Mesh geometry and dimension-ordered routing.

use std::fmt;

/// A tile coordinate on the 2D mesh.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Coord {
    /// Column.
    pub x: u16,
    /// Row.
    pub y: u16,
}

impl Coord {
    /// Creates a coordinate.
    #[must_use]
    pub fn new(x: u16, y: u16) -> Self {
        Coord { x, y }
    }

    /// Manhattan distance to another coordinate.
    #[must_use]
    pub fn manhattan(self, other: Coord) -> u32 {
        (self.x.abs_diff(other.x) as u32) + (self.y.abs_diff(other.y) as u32)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// A directed link between adjacent tiles, identified by its source tile
/// and direction. Used as the unit of bandwidth by the queued network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Link {
    /// Source tile of the hop.
    pub from: Coord,
    /// Destination tile of the hop (always mesh-adjacent to `from`).
    pub to: Coord,
}

/// A rectangular mesh of tiles.
///
/// # Example
///
/// ```
/// use sharing_noc::{Coord, Mesh};
/// let m = Mesh::new(8, 8);
/// assert_eq!(m.tiles(), 64);
/// assert_eq!(m.hops(Coord::new(0, 0), Coord::new(7, 7)), 14);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mesh {
    width: u16,
    height: u16,
}

impl Mesh {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        Mesh { width, height }
    }

    /// Mesh width (columns).
    #[must_use]
    pub fn width(self) -> u16 {
        self.width
    }

    /// Mesh height (rows).
    #[must_use]
    pub fn height(self) -> u16 {
        self.height
    }

    /// Total number of tiles.
    #[must_use]
    pub fn tiles(self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Whether the coordinate lies on this mesh.
    #[must_use]
    pub fn contains(self, c: Coord) -> bool {
        c.x < self.width && c.y < self.height
    }

    /// Converts a linear tile index (row-major) to a coordinate.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.tiles()`.
    #[must_use]
    pub fn coord_of(self, index: usize) -> Coord {
        assert!(index < self.tiles(), "tile index {index} out of range");
        Coord::new(
            (index % self.width as usize) as u16,
            (index / self.width as usize) as u16,
        )
    }

    /// Converts a coordinate to its linear (row-major) tile index.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is off-mesh.
    #[must_use]
    pub fn index_of(self, c: Coord) -> usize {
        assert!(self.contains(c), "coordinate {c} off mesh");
        c.y as usize * self.width as usize + c.x as usize
    }

    /// Network hop count between two tiles (Manhattan distance under
    /// dimension-ordered routing).
    #[must_use]
    pub fn hops(self, a: Coord, b: Coord) -> u32 {
        debug_assert!(self.contains(a) && self.contains(b));
        a.manhattan(b)
    }

    /// The XY-routed path from `a` to `b` as a sequence of directed links
    /// (X first, then Y). Empty when `a == b`.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is off-mesh.
    #[must_use]
    pub fn route(self, a: Coord, b: Coord) -> Vec<Link> {
        self.route_steps(a, b).collect()
    }

    /// The same XY-routed path as [`Mesh::route`], but as a lazy iterator
    /// so hot paths (one per operand-network message) walk the links
    /// without allocating.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is off-mesh.
    pub fn route_steps(self, a: Coord, b: Coord) -> RouteSteps {
        assert!(
            self.contains(a) && self.contains(b),
            "route endpoints must be on mesh"
        );
        RouteSteps { cur: a, dst: b }
    }
}

/// Lazy XY-route walker returned by [`Mesh::route_steps`].
#[derive(Clone, Copy, Debug)]
pub struct RouteSteps {
    cur: Coord,
    dst: Coord,
}

impl Iterator for RouteSteps {
    type Item = Link;

    fn next(&mut self) -> Option<Link> {
        let cur = self.cur;
        let dst = self.dst;
        let next = if cur.x != dst.x {
            Coord::new(if dst.x > cur.x { cur.x + 1 } else { cur.x - 1 }, cur.y)
        } else if cur.y != dst.y {
            Coord::new(cur.x, if dst.y > cur.y { cur.y + 1 } else { cur.y - 1 })
        } else {
            return None;
        };
        self.cur = next;
        Some(Link {
            from: cur,
            to: next,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.cur.manhattan(self.dst) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for RouteSteps {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_coord_roundtrip() {
        let m = Mesh::new(5, 3);
        for i in 0..m.tiles() {
            assert_eq!(m.index_of(m.coord_of(i)), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coord_of_out_of_range_panics() {
        let _ = Mesh::new(2, 2).coord_of(4);
    }

    #[test]
    fn hops_is_manhattan() {
        let m = Mesh::new(8, 8);
        assert_eq!(m.hops(Coord::new(1, 1), Coord::new(1, 1)), 0);
        assert_eq!(m.hops(Coord::new(0, 0), Coord::new(3, 0)), 3);
        assert_eq!(m.hops(Coord::new(2, 5), Coord::new(5, 1)), 7);
    }

    #[test]
    fn route_is_x_then_y_and_adjacent() {
        let m = Mesh::new(8, 8);
        let path = m.route(Coord::new(1, 1), Coord::new(3, 4));
        assert_eq!(path.len(), 5);
        // Each hop is mesh-adjacent and chained.
        for w in path.windows(2) {
            assert_eq!(w[0].to, w[1].from);
        }
        assert_eq!(path[0].from, Coord::new(1, 1));
        assert_eq!(path.last().unwrap().to, Coord::new(3, 4));
        // X dimension resolves first.
        assert_eq!(path[0].to, Coord::new(2, 1));
        assert_eq!(path[1].to, Coord::new(3, 1));
        assert_eq!(path[2].to, Coord::new(3, 2));
    }

    #[test]
    fn route_to_self_is_empty() {
        let m = Mesh::new(4, 4);
        assert!(m.route(Coord::new(2, 2), Coord::new(2, 2)).is_empty());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_mesh_rejected() {
        let _ = Mesh::new(0, 4);
    }

    #[test]
    fn route_steps_is_a_chained_xy_walk_everywhere() {
        let m = Mesh::new(5, 4);
        for i in 0..m.tiles() {
            for j in 0..m.tiles() {
                let (a, b) = (m.coord_of(i), m.coord_of(j));
                let path: Vec<Link> = m.route_steps(a, b).collect();
                assert_eq!(path.len(), m.hops(a, b) as usize, "{a} -> {b}");
                let mut cur = a;
                let mut turned = false;
                for link in &path {
                    assert_eq!(link.from, cur);
                    assert_eq!(link.from.manhattan(link.to), 1, "hops are adjacent");
                    if link.from.y != link.to.y {
                        turned = true;
                    } else {
                        assert!(!turned, "X resolves before Y");
                    }
                    cur = link.to;
                }
                assert_eq!(cur, b);
            }
        }
    }

    #[test]
    fn route_westward_and_northward() {
        let m = Mesh::new(8, 8);
        let path = m.route(Coord::new(5, 6), Coord::new(2, 3));
        assert_eq!(path.len(), 6);
        assert_eq!(path.last().unwrap().to, Coord::new(2, 3));
    }
}
