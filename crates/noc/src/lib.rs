//! Switched 2D on-chip networks for the Sharing Architecture.
//!
//! The paper connects Slices and L2 cache banks with multiple, pipelined,
//! switched interconnection networks (§1, §3.4, §5.1): a **Scalar Operand
//! Network** carrying operand requests/replies between Slices, a
//! **load/store sorting network** moving memory operations to their home
//! Slice's LSQ bank, a **global rename network** for the master-Slice rename
//! broadcast, and the Slice↔L2 data network. All use the same transport
//! model, borrowed from Tilera: a two-cycle cost between nearest-neighbour
//! tiles plus one cycle for each additional network hop.
//!
//! Two fidelity levels are provided:
//!
//! * [`IdealNetwork`] — the latency formula alone (infinite bandwidth);
//!   this is the model the paper's headline numbers use.
//! * [`QueuedNetwork`] — adds per-link serialization (one message per link
//!   per cycle) over dimension-ordered XY routes, used for the operand
//!   network bandwidth ablation (§5.1 reports a second operand network buys
//!   only ≈1%).
//!
//! # Example
//!
//! ```
//! use sharing_noc::{Coord, LatencyModel, Mesh};
//!
//! let mesh = Mesh::new(4, 4);
//! let lat = LatencyModel::tilera();
//! let a = Coord::new(0, 0);
//! let b = Coord::new(2, 1);
//! assert_eq!(mesh.hops(a, b), 3);
//! assert_eq!(lat.latency(mesh.hops(a, b)), 4); // 2 + (3-1)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mesh;
pub mod network;

pub use mesh::{Coord, Mesh};
pub use network::{IdealNetwork, LatencyModel, NetStats, QueuedNetwork, Transport};
