//! Transport models over the mesh.

use crate::mesh::{Coord, Link, Mesh};
use sharing_json::json_struct;
use std::collections::{BTreeSet, HashMap};

/// The latency formula of a pipelined, switched network.
///
/// The paper (§3.4) models a two-cycle communication cost between
/// nearest-neighbour Slices and one additional cycle per extra network hop —
/// "the same latency as on a Tilera processor".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    /// Cost of a nearest-neighbour (1-hop) message.
    pub base: u32,
    /// Additional cost per hop beyond the first.
    pub per_hop: u32,
    /// Cost of a message that stays on its own tile (e.g. a load sorted to
    /// its issuing Slice's own LSQ bank): just the network-interface
    /// insertion cycle.
    pub local: u32,
}

impl LatencyModel {
    /// The paper's Tilera-derived model: 2 cycles nearest neighbour,
    /// +1/hop, 1 cycle for tile-local delivery.
    #[must_use]
    pub fn tilera() -> Self {
        LatencyModel {
            base: 2,
            per_hop: 1,
            local: 1,
        }
    }

    /// A zero-latency model (useful for idealization ablations).
    #[must_use]
    pub fn zero() -> Self {
        LatencyModel {
            base: 0,
            per_hop: 0,
            local: 0,
        }
    }

    /// Delivery latency for a message crossing `hops` links.
    #[must_use]
    pub fn latency(self, hops: u32) -> u32 {
        if hops == 0 {
            self.local
        } else {
            self.base + self.per_hop * (hops - 1)
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::tilera()
    }
}

/// Counters accumulated by a transport.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages sent.
    pub messages: u64,
    /// Total hops traversed.
    pub hops: u64,
    /// Cycles lost to link contention (queued model only).
    pub contention_cycles: u64,
}

impl std::ops::AddAssign for NetStats {
    fn add_assign(&mut self, other: NetStats) {
        self.messages += other.messages;
        self.hops += other.hops;
        self.contention_cycles += other.contention_cycles;
    }
}

json_struct!(LatencyModel {
    base,
    per_hop,
    local
});
json_struct!(NetStats {
    messages,
    hops,
    contention_cycles
});

/// A message transport over the mesh: given a send cycle, produces the
/// arrival cycle.
pub trait Transport {
    /// Sends a message at cycle `now`; returns its arrival cycle at `dst`.
    fn send(&mut self, src: Coord, dst: Coord, now: u64) -> u64;

    /// Multicasts a message to several destinations (the Sharing
    /// Architecture's master-Slice rename broadcast, §3.2.1, and
    /// mispredict-flush fan-out, §3.1). The default implementation sends
    /// one unicast per destination; implementations with tree forwarding
    /// can share path prefixes. Returns the per-destination arrival
    /// cycles, in `dsts` order.
    fn multicast(&mut self, src: Coord, dsts: &[Coord], now: u64) -> Vec<u64> {
        dsts.iter().map(|&d| self.send(src, d, now)).collect()
    }

    /// Accumulated statistics.
    fn stats(&self) -> NetStats;

    /// Resets statistics (and any queue state).
    fn reset(&mut self);
}

/// Infinite-bandwidth transport: pure latency formula.
///
/// # Example
///
/// ```
/// use sharing_noc::{Coord, IdealNetwork, Mesh, Transport};
///
/// let mut net = IdealNetwork::new(Mesh::new(4, 4), Default::default());
/// let arrive = net.send(Coord::new(0, 0), Coord::new(1, 0), 100);
/// assert_eq!(arrive, 102); // 2-cycle nearest neighbour
/// ```
#[derive(Clone, Debug)]
pub struct IdealNetwork {
    mesh: Mesh,
    latency: LatencyModel,
    stats: NetStats,
}

impl IdealNetwork {
    /// Creates an ideal transport.
    #[must_use]
    pub fn new(mesh: Mesh, latency: LatencyModel) -> Self {
        IdealNetwork {
            mesh,
            latency,
            stats: NetStats::default(),
        }
    }

    /// The latency model in use.
    #[must_use]
    pub fn latency_model(&self) -> LatencyModel {
        self.latency
    }

    /// The mesh geometry.
    #[must_use]
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }
}

impl Transport for IdealNetwork {
    fn send(&mut self, src: Coord, dst: Coord, now: u64) -> u64 {
        let hops = self.mesh.hops(src, dst);
        self.stats.messages += 1;
        self.stats.hops += u64::from(hops);
        now + u64::from(self.latency.latency(hops))
    }

    fn stats(&self) -> NetStats {
        self.stats
    }

    fn reset(&mut self) {
        self.stats = NetStats::default();
    }
}

/// Reference link calendar: the exact cycle set as a `BTreeSet`, polled
/// one cycle at a time. This is the original (pre-event-driven)
/// representation, kept as the byte-identity oracle for
/// [`BitmapCalendar`] — `QueuedNetwork::new_polled` selects it so
/// differential tests can diff full runs against the event-driven door.
#[derive(Clone, Debug, Default)]
struct LinkCalendar {
    busy: BTreeSet<u64>,
}

impl LinkCalendar {
    /// Claims the first free cycle at or after `t`.
    fn claim(&mut self, t: u64) -> u64 {
        let mut c = t;
        while self.busy.contains(&c) {
            c += 1;
        }
        self.busy.insert(c);
        if self.busy.len() > 4096 {
            let cutoff = c.saturating_sub(2048);
            self.busy = self.busy.split_off(&cutoff);
        }
        c
    }

    /// Whether cycle `t` is free on this link (for plane selection).
    fn free_at(&self, t: u64) -> bool {
        !self.busy.contains(&t)
    }
}

/// Event-driven link calendar: the same cycle set as [`LinkCalendar`],
/// held as a windowed bitmap (one bit per cycle, 64 cycles per word) so a
/// claim is a word-scan for the first zero bit instead of a per-cycle
/// `contains` poll, and so the hot path allocates nothing.
///
/// Every observable behaviour is bit-identical to the reference:
/// `claim(t)` returns the first clear cycle ≥ `t`, and once the set
/// exceeds 4096 claimed cycles it forgets everything below
/// `claim − 2048` (mirroring the reference's `split_off`), which makes
/// those old cycles claimable again. Out-of-order claims below the
/// window's base grow the window backward rather than approximating.
#[derive(Clone, Debug, Default)]
struct BitmapCalendar {
    /// Cycle number of bit 0 of `words[0]`.
    base: u64,
    /// Busy bits; bit `i` of `words[w]` covers cycle `base + 64w + i`.
    words: Vec<u64>,
    /// Number of set bits (mirrors the reference set's `len()`).
    count: usize,
}

impl BitmapCalendar {
    /// Claims the first free cycle at or after `t`.
    fn claim(&mut self, t: u64) -> u64 {
        if self.words.is_empty() {
            self.base = t & !63;
            self.count = 0;
        } else if t < self.base {
            let k = ((self.base - t).div_ceil(64)) as usize;
            self.words.splice(0..0, std::iter::repeat_n(0, k));
            self.base -= 64 * k as u64;
        }
        let mut idx = ((t - self.base) / 64) as usize;
        let mut mask = !0u64 << ((t - self.base) % 64);
        let c = loop {
            if idx >= self.words.len() {
                self.words.resize(idx + 1, 0);
            }
            let free = !self.words[idx] & mask;
            if free != 0 {
                let bit = free.trailing_zeros() as u64;
                self.words[idx] |= 1 << bit;
                break self.base + idx as u64 * 64 + bit;
            }
            idx += 1;
            mask = !0;
        };
        self.count += 1;
        if self.count > 4096 {
            self.prune(c.saturating_sub(2048));
        }
        c
    }

    /// Forgets all claimed cycles strictly below `cutoff` (they become
    /// free again), exactly as the reference's `split_off(&cutoff)`.
    fn prune(&mut self, cutoff: u64) {
        if cutoff <= self.base {
            return;
        }
        let whole = (((cutoff - self.base) / 64) as usize).min(self.words.len());
        for w in self.words.drain(..whole) {
            self.count -= w.count_ones() as usize;
        }
        self.base += 64 * whole as u64;
        if cutoff > self.base {
            if let Some(w0) = self.words.first_mut() {
                let below = (1u64 << (cutoff - self.base)) - 1;
                self.count -= (*w0 & below).count_ones() as usize;
                *w0 &= !below;
            }
        }
    }

    /// Whether cycle `t` is free on this link (for plane selection).
    fn free_at(&self, t: u64) -> bool {
        if t < self.base {
            return true;
        }
        let idx = ((t - self.base) / 64) as usize;
        idx >= self.words.len() || self.words[idx] & (1 << ((t - self.base) % 64)) == 0
    }
}

/// Per-plane link occupancy in one of the two representations.
#[derive(Clone, Debug)]
enum LinkClaims {
    /// Reference: lazily-populated map of per-cycle sets, polled per cycle.
    Polled(Vec<HashMap<Link, LinkCalendar>>),
    /// Event-driven: flat `tiles × 4` array of bitmap calendars per plane,
    /// indexed by (source tile, direction) — no hashing, no allocation.
    Event(Vec<Vec<BitmapCalendar>>),
}

/// Flat slot of a directed link: source tile index × 4 + direction.
fn link_slot(mesh: Mesh, link: Link) -> usize {
    let dir = if link.to.x > link.from.x {
        0 // east
    } else if link.to.x < link.from.x {
        1 // west
    } else if link.to.y > link.from.y {
        2 // south
    } else {
        3 // north
    };
    mesh.index_of(link.from) * 4 + dir
}

/// Bandwidth-limited transport: one message per directed link per cycle,
/// dimension-ordered routing, with one or more parallel physical planes.
///
/// Multiple planes model the paper's operand-network bandwidth ablation
/// (§5.1 found a second network buys only ≈1% performance).
///
/// Two internal representations exist, selected at construction and
/// observably identical: [`QueuedNetwork::new`] uses event-driven bitmap
/// calendars (DESIGN.md §13), while [`QueuedNetwork::new_polled`] keeps
/// the original per-cycle-polled `BTreeSet` calendars as the oracle for
/// differential tests.
#[derive(Clone, Debug)]
pub struct QueuedNetwork {
    mesh: Mesh,
    latency: LatencyModel,
    planes: usize,
    /// Per-plane, per-link cycle calendars. Messages are timestamped, not
    /// processed in time order, so links track exact occupied cycles
    /// rather than a monotonic cursor.
    links: LinkClaims,
    stats: NetStats,
}

impl QueuedNetwork {
    /// Creates a queued transport with the given number of physical
    /// planes, using the event-driven link representation.
    ///
    /// # Panics
    ///
    /// Panics if `planes == 0`.
    #[must_use]
    pub fn new(mesh: Mesh, latency: LatencyModel, planes: usize) -> Self {
        assert!(planes > 0, "at least one network plane required");
        QueuedNetwork {
            mesh,
            latency,
            planes,
            links: LinkClaims::Event(vec![
                vec![BitmapCalendar::default(); mesh.tiles() * 4];
                planes
            ]),
            stats: NetStats::default(),
        }
    }

    /// Creates a queued transport backed by the original per-cycle-polled
    /// calendars. Slower; exists so the legacy engine mode and the
    /// differential suite can pin the event-driven path byte-for-byte.
    ///
    /// # Panics
    ///
    /// Panics if `planes == 0`.
    #[must_use]
    pub fn new_polled(mesh: Mesh, latency: LatencyModel, planes: usize) -> Self {
        assert!(planes > 0, "at least one network plane required");
        QueuedNetwork {
            mesh,
            latency,
            planes,
            links: LinkClaims::Polled(vec![HashMap::new(); planes]),
            stats: NetStats::default(),
        }
    }

    /// Whether this network uses the event-driven representation.
    #[must_use]
    pub fn is_event_driven(&self) -> bool {
        matches!(self.links, LinkClaims::Event(_))
    }

    /// Claims the first free cycle ≥ `t` on `link` in `plane`.
    fn claim(&mut self, plane: usize, link: Link, t: u64) -> u64 {
        match &mut self.links {
            LinkClaims::Polled(cals) => cals[plane].entry(link).or_default().claim(t),
            LinkClaims::Event(planes) => {
                let slot = link_slot(self.mesh, link);
                planes[plane][slot].claim(t)
            }
        }
    }

    /// Whether `link` is free at cycle `t` in `plane` (plane selection).
    fn link_free_at(&self, plane: usize, link: Link, t: u64) -> bool {
        match &self.links {
            LinkClaims::Polled(cals) => cals[plane].get(&link).is_none_or(|c| c.free_at(t)),
            LinkClaims::Event(planes) => planes[plane][link_slot(self.mesh, link)].free_at(t),
        }
    }
}

impl Transport for QueuedNetwork {
    fn send(&mut self, src: Coord, dst: Coord, now: u64) -> u64 {
        let hops = self.mesh.hops(src, dst);
        self.stats.messages += 1;
        self.stats.hops += u64::from(hops);
        if hops == 0 {
            return now + u64::from(self.latency.local);
        }
        let mesh = self.mesh;
        let mut steps = mesh.route_steps(src, dst);
        let first = steps.next().expect("hops > 0 implies a first link");
        // Pick a plane whose first link is free at the insertion cycle.
        let plane = (0..self.planes)
            .find(|&p| self.link_free_at(p, first, now + 1))
            .unwrap_or(0);
        // Insertion into the network interface costs one cycle; each link
        // then adds a cycle, stalling behind traffic that holds the link
        // in the same cycle.
        let mut t = now + 1;
        for link in std::iter::once(first).chain(steps) {
            let depart = self.claim(plane, link, t);
            self.stats.contention_cycles += depart - t;
            t = depart + 1;
        }
        // The uncontended queued cost is 1 (insertion) + hops; align the
        // floor with the analytic model so both modes agree when idle.
        let floor = now + u64::from(self.latency.latency(hops));
        t.max(floor)
    }

    /// Tree multicast: dimension-ordered routes to all destinations share
    /// their common prefix, so a shared link is claimed (and paid for)
    /// once — a flit forks at the divergence router instead of being
    /// re-injected per destination.
    fn multicast(&mut self, src: Coord, dsts: &[Coord], now: u64) -> Vec<u64> {
        // Arrival time at each tile the tree has reached so far.
        let mut reached: HashMap<Coord, u64> = HashMap::new();
        reached.insert(src, now + 1); // network-interface insertion
        let mut out = Vec::with_capacity(dsts.len());
        for &dst in dsts {
            self.stats.messages += 1;
            self.stats.hops += u64::from(self.mesh.hops(src, dst));
            if dst == src {
                out.push(now + u64::from(self.latency.local));
                continue;
            }
            // Walk forward from the deepest already-reached tile.
            let mut t = reached[&src];
            for link in self.mesh.route_steps(src, dst) {
                if let Some(&at) = reached.get(&link.to) {
                    t = at;
                    continue;
                }
                let depart = self.claim(0, link, t);
                self.stats.contention_cycles += depart - t;
                t = depart + 1;
                reached.insert(link.to, t);
            }
            let floor = now + u64::from(self.latency.latency(self.mesh.hops(src, dst)));
            out.push(t.max(floor));
        }
        out
    }

    fn stats(&self) -> NetStats {
        self.stats
    }

    fn reset(&mut self) {
        match &mut self.links {
            LinkClaims::Polled(cals) => {
                for plane in cals {
                    plane.clear();
                }
            }
            LinkClaims::Event(planes) => {
                for plane in planes {
                    for cal in plane {
                        *cal = BitmapCalendar::default();
                    }
                }
            }
        }
        self.stats = NetStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(8, 8)
    }

    #[test]
    fn tilera_latency_formula() {
        let l = LatencyModel::tilera();
        assert_eq!(l.latency(0), 1);
        assert_eq!(l.latency(1), 2);
        assert_eq!(l.latency(2), 3);
        assert_eq!(l.latency(5), 6);
    }

    #[test]
    fn ideal_network_applies_formula() {
        let mut n = IdealNetwork::new(mesh(), LatencyModel::tilera());
        assert_eq!(n.send(Coord::new(0, 0), Coord::new(0, 0), 10), 11);
        assert_eq!(n.send(Coord::new(0, 0), Coord::new(1, 0), 10), 12);
        assert_eq!(n.send(Coord::new(0, 0), Coord::new(3, 2), 10), 16);
        assert_eq!(n.stats().messages, 3);
        assert_eq!(n.stats().hops, 1 + 5);
    }

    #[test]
    fn queued_matches_ideal_when_uncontended() {
        let mut q = QueuedNetwork::new(mesh(), LatencyModel::tilera(), 1);
        let mut i = IdealNetwork::new(mesh(), LatencyModel::tilera());
        for (src, dst) in [
            (Coord::new(0, 0), Coord::new(1, 0)),
            (Coord::new(2, 2), Coord::new(5, 6)),
            (Coord::new(7, 7), Coord::new(0, 0)),
        ] {
            // Spread sends far apart in time so queues drain.
            let t = 1_000 * u64::from(src.x + 1);
            assert_eq!(q.send(src, dst, t), i.send(src, dst, t));
        }
        assert_eq!(q.stats().contention_cycles, 0);
    }

    #[test]
    fn queued_serializes_same_link_traffic() {
        let mut q = QueuedNetwork::new(mesh(), LatencyModel::tilera(), 1);
        let src = Coord::new(0, 0);
        let dst = Coord::new(1, 0);
        let a = q.send(src, dst, 100);
        let b = q.send(src, dst, 100);
        let c = q.send(src, dst, 100);
        assert_eq!(a, 102);
        assert_eq!(b, 103, "second message stalls one cycle behind the first");
        assert_eq!(c, 104);
        assert!(q.stats().contention_cycles >= 3 - 1);
    }

    #[test]
    fn second_plane_absorbs_contention() {
        let mut one = QueuedNetwork::new(mesh(), LatencyModel::tilera(), 1);
        let mut two = QueuedNetwork::new(mesh(), LatencyModel::tilera(), 2);
        let src = Coord::new(0, 0);
        let dst = Coord::new(1, 0);
        let (a1, b1) = (one.send(src, dst, 0), one.send(src, dst, 0));
        let (a2, b2) = (two.send(src, dst, 0), two.send(src, dst, 0));
        assert_eq!(a1, a2);
        assert!(b2 < b1, "two planes should beat one under contention");
    }

    #[test]
    fn local_messages_skip_links() {
        let mut q = QueuedNetwork::new(mesh(), LatencyModel::tilera(), 1);
        assert_eq!(q.send(Coord::new(3, 3), Coord::new(3, 3), 7), 8);
        assert_eq!(q.stats().hops, 0);
    }

    #[test]
    fn reset_clears_state() {
        let mut q = QueuedNetwork::new(mesh(), LatencyModel::tilera(), 1);
        q.send(Coord::new(0, 0), Coord::new(4, 4), 0);
        q.reset();
        assert_eq!(q.stats(), NetStats::default());
        // After reset, no residual contention.
        let a = q.send(Coord::new(0, 0), Coord::new(1, 0), 0);
        assert_eq!(a, 2);
    }

    #[test]
    #[should_panic(expected = "at least one network plane")]
    fn zero_planes_rejected() {
        let _ = QueuedNetwork::new(mesh(), LatencyModel::tilera(), 0);
    }

    #[test]
    fn net_stats_accumulate_per_field() {
        let mut total = NetStats {
            messages: 1,
            hops: 2,
            contention_cycles: 3,
        };
        total += NetStats {
            messages: 10,
            hops: 20,
            contention_cycles: 30,
        };
        assert_eq!(
            total,
            NetStats {
                messages: 11,
                hops: 22,
                contention_cycles: 33,
            }
        );
    }

    #[test]
    fn zero_latency_model() {
        let mut n = IdealNetwork::new(mesh(), LatencyModel::zero());
        assert_eq!(n.send(Coord::new(0, 0), Coord::new(5, 5), 42), 42);
    }

    #[test]
    fn ideal_multicast_matches_unicasts() {
        let mut n = IdealNetwork::new(mesh(), LatencyModel::tilera());
        let dsts = [Coord::new(1, 0), Coord::new(3, 0), Coord::new(0, 2)];
        let arrivals = n.multicast(Coord::new(0, 0), &dsts, 10);
        assert_eq!(arrivals, vec![12, 14, 13]);
    }

    #[test]
    fn queued_multicast_matches_latency_floor_when_idle() {
        let mut q = QueuedNetwork::new(mesh(), LatencyModel::tilera(), 1);
        let src = Coord::new(0, 0);
        let dsts = [Coord::new(1, 0), Coord::new(2, 0), Coord::new(4, 0)];
        let arrivals = q.multicast(src, &dsts, 100);
        // Along one row the tree is a single path: each destination hears
        // the flit at its unicast latency.
        assert_eq!(arrivals, vec![102, 103, 105]);
    }

    #[test]
    fn queued_multicast_shares_the_common_prefix() {
        // Destinations share the first two row hops. A tree claims those
        // links once; three unicasts would claim them three times and
        // serialize.
        let src = Coord::new(0, 0);
        let dsts = [Coord::new(2, 1), Coord::new(2, 2), Coord::new(2, 3)];
        let mut tree = QueuedNetwork::new(mesh(), LatencyModel::tilera(), 1);
        let tree_arrivals = tree.multicast(src, &dsts, 0);
        let mut uni = QueuedNetwork::new(mesh(), LatencyModel::tilera(), 1);
        let uni_arrivals: Vec<u64> = dsts.iter().map(|&d| uni.send(src, d, 0)).collect();
        assert!(
            tree_arrivals.iter().max() < uni_arrivals.iter().max(),
            "tree {tree_arrivals:?} should beat serialized unicasts {uni_arrivals:?}"
        );
        assert!(tree.stats().contention_cycles <= uni.stats().contention_cycles);
    }

    /// Deterministic xorshift for the differential fuzzers.
    fn rng(seed: &mut u64) -> u64 {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        *seed
    }

    #[test]
    fn bitmap_calendar_matches_btreeset_reference() {
        // Direct fuzz of the two calendar representations, with enough
        // claims to cross the 4096-entry prune several times and with
        // occasional out-of-order (backward-in-time) claims.
        let mut bitmap = BitmapCalendar::default();
        let mut reference = LinkCalendar::default();
        let mut seed = 0x5EED_CAFE;
        let mut now = 100u64;
        for i in 0..40_000u64 {
            let r = rng(&mut seed);
            now += r % 3; // mostly clustered, slowly advancing
            let t = if r.is_multiple_of(97) { now / 2 } else { now }; // rare old claim
            let a = bitmap.claim(t);
            let b = reference.claim(t);
            assert_eq!(a, b, "claim {i} at t={t} diverged");
            assert_eq!(bitmap.count, reference.busy.len(), "count after claim {i}");
            let probe = t + r % 5;
            assert_eq!(bitmap.free_at(probe), reference.free_at(probe));
        }
    }

    #[test]
    fn event_network_matches_polled_network() {
        // Full-transport differential: identical send/multicast sequences
        // through both representations must produce identical arrivals
        // and identical stats (contention cycles included).
        for planes in [1, 2] {
            let mut event = QueuedNetwork::new(mesh(), LatencyModel::tilera(), planes);
            let mut polled = QueuedNetwork::new_polled(mesh(), LatencyModel::tilera(), planes);
            assert!(event.is_event_driven() && !polled.is_event_driven());
            let mut seed = 0xD1FF ^ planes as u64;
            let mut now = 0u64;
            for i in 0..20_000u64 {
                let r = rng(&mut seed);
                now += r % 2; // heavy same-cycle contention
                let src = Coord::new((r >> 8) as u16 % 8, (r >> 16) as u16 % 8);
                let dst = Coord::new((r >> 24) as u16 % 8, (r >> 32) as u16 % 8);
                if r.is_multiple_of(29) {
                    let dsts = [dst, Coord::new((r >> 40) as u16 % 8, 0), src];
                    assert_eq!(
                        event.multicast(src, &dsts, now),
                        polled.multicast(src, &dsts, now),
                        "multicast {i} diverged"
                    );
                } else {
                    assert_eq!(
                        event.send(src, dst, now),
                        polled.send(src, dst, now),
                        "send {i} ({src} -> {dst} at {now}) diverged"
                    );
                }
            }
            assert_eq!(event.stats(), polled.stats());
        }
    }

    #[test]
    fn multicast_to_self_is_local() {
        let mut q = QueuedNetwork::new(mesh(), LatencyModel::tilera(), 1);
        let src = Coord::new(3, 3);
        let arrivals = q.multicast(src, &[src, Coord::new(4, 3)], 7);
        assert_eq!(arrivals[0], 8);
        assert_eq!(arrivals[1], 9);
    }
}
