//! Sub-core resource auctions (paper §2.1/§2.3).
//!
//! The paper's "new model" replaces fixed instance types with a market
//! where "the cloud provider auctions off all resources down to the ALU,
//! KB of cache, fetch unit, retire unit" — the sub-core analogue of EC2
//! Spot Pricing. This module implements that auction as a tâtonnement:
//! the provider posts per-Slice and per-bank prices, every customer
//! responds with their budget-constrained optimal demand (the §5.6
//! problem), and prices rise on over-subscribed resources and fall on
//! idle ones until demand meets the chip's supply.
//!
//! Because the Sharing Architecture lets customers substitute between
//! Slices and cache continuously, the market *clears*: scarce Slices push
//! cache-tolerant customers toward bank-heavy configurations and vice
//! versa — exactly the demand-shift behaviour Table 6 shows across
//! Markets 1–3.

use crate::market::Market;
use crate::optimize::best_utility;
use crate::surface::PerfSurface;
use crate::utility::UtilityFn;
use sharing_core::VCoreShape;

/// A customer participating in the auction.
#[derive(Clone, Debug)]
pub struct Bidder {
    /// Display name.
    pub name: String,
    /// The customer's measured performance surface.
    pub surface: PerfSurface,
    /// Their utility function.
    pub utility: UtilityFn,
    /// Their budget per market period.
    pub budget: f64,
}

/// One bidder's cleared allocation.
#[derive(Clone, Debug)]
pub struct Allocation {
    /// The bidder's name.
    pub bidder: String,
    /// The VCore shape they chose at clearing prices.
    pub shape: VCoreShape,
    /// How many such VCores their budget bought.
    pub vcores: f64,
    /// The utility they realized.
    pub utility: f64,
}

/// The auction outcome.
#[derive(Clone, Debug)]
pub struct Clearing {
    /// Clearing price per Slice.
    pub slice_price: f64,
    /// Clearing price per 64 KB bank.
    pub bank_price: f64,
    /// Tâtonnement iterations used.
    pub iterations: usize,
    /// Aggregate Slice demand at the clearing prices.
    pub slice_demand: f64,
    /// Aggregate bank demand at the clearing prices.
    pub bank_demand: f64,
    /// Per-bidder allocations.
    pub allocations: Vec<Allocation>,
}

impl Clearing {
    /// Total utility across bidders (the welfare the provider's market
    /// delivered).
    #[must_use]
    pub fn total_utility(&self) -> f64 {
        self.allocations.iter().map(|a| a.utility).sum()
    }
}

/// The provider's auction over one chip's resources.
#[derive(Clone, Debug)]
pub struct Auction {
    supply_slices: f64,
    supply_banks: f64,
    bidders: Vec<Bidder>,
}

impl Auction {
    /// Creates an auction for a chip with the given free resources.
    ///
    /// # Panics
    ///
    /// Panics unless both supplies are positive.
    #[must_use]
    pub fn new(supply_slices: f64, supply_banks: f64) -> Self {
        assert!(
            supply_slices > 0.0 && supply_banks > 0.0,
            "supplies must be positive"
        );
        Auction {
            supply_slices,
            supply_banks,
            bidders: Vec::new(),
        }
    }

    /// Adds a bidder.
    pub fn add_bidder(&mut self, bidder: Bidder) -> &mut Self {
        self.bidders.push(bidder);
        self
    }

    /// Number of registered bidders.
    #[must_use]
    pub fn bidder_count(&self) -> usize {
        self.bidders.len()
    }

    /// Aggregate demand and allocations at posted prices.
    fn demand_at(&self, slice_price: f64, bank_price: f64) -> (f64, f64, Vec<Allocation>) {
        let market = Market {
            name: "auction",
            slice_price,
            bank_price,
        };
        let mut slices = 0.0;
        let mut banks = 0.0;
        let mut allocations = Vec::with_capacity(self.bidders.len());
        for b in &self.bidders {
            let chosen = best_utility(&b.surface, b.utility, &market, b.budget);
            let v = market.affordable_cores(chosen.shape, b.budget);
            slices += v * chosen.shape.slices as f64;
            banks += v * chosen.shape.l2_banks as f64;
            allocations.push(Allocation {
                bidder: b.name.clone(),
                shape: chosen.shape,
                vcores: v,
                utility: chosen.value,
            });
        }
        (slices, banks, allocations)
    }

    /// Runs the tâtonnement: prices move with excess demand until both
    /// resources are within `tolerance` of supply (relative) or
    /// `max_iterations` pass. Demand is discrete in configurations, so
    /// exact clearing is not always possible; the returned prices are the
    /// closest fixed point found.
    ///
    /// # Panics
    ///
    /// Panics if there are no bidders, `tolerance` is not positive, or
    /// `max_iterations` is zero.
    #[must_use]
    pub fn clear(&self, max_iterations: usize, tolerance: f64) -> Clearing {
        assert!(!self.bidders.is_empty(), "auction needs bidders");
        assert!(tolerance > 0.0 && max_iterations > 0);
        // Start from equal-area prices (Market 2).
        let mut ps = Market::MARKET2.slice_price;
        let mut pb = Market::MARKET2.bank_price;
        let mut best: Option<(f64, Clearing)> = None;
        for iteration in 1..=max_iterations {
            let (sd, bd, allocations) = self.demand_at(ps, pb);
            let clearing = Clearing {
                slice_price: ps,
                bank_price: pb,
                iterations: iteration,
                slice_demand: sd,
                bank_demand: bd,
                allocations,
            };
            // Distance from clearing, in relative excess-demand terms.
            let s_ratio = sd / self.supply_slices;
            let b_ratio = bd / self.supply_banks;
            let err = (s_ratio - 1.0).abs().max((b_ratio - 1.0).abs());
            if best.as_ref().is_none_or(|(e, _)| err < *e) {
                best = Some((err, clearing));
            }
            if err <= tolerance {
                break;
            }
            // Multiplicative price adjustment, damped for stability over
            // the discrete demand landscape.
            ps = (ps * s_ratio.powf(0.5)).clamp(1e-3, 1e6);
            pb = (pb * b_ratio.powf(0.5)).clamp(1e-3, 1e6);
        }
        best.expect("at least one iteration ran").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn surface(slice_love: f64, cache_love: f64) -> PerfSurface {
        PerfSurface::from_fn("syn", move |s| {
            (1.0 + slice_love * (s.slices as f64).ln())
                * (1.0 + cache_love * (1.0 + s.l2_banks as f64).ln() / 4.0)
        })
    }

    fn bidder(name: &str, slice_love: f64, cache_love: f64, budget: f64) -> Bidder {
        Bidder {
            name: name.to_string(),
            surface: surface(slice_love, cache_love),
            utility: UtilityFn::Balanced,
            budget,
        }
    }

    #[test]
    fn auction_converges_near_clearing() {
        let mut a = Auction::new(64.0, 64.0);
        a.add_bidder(bidder("compute", 1.5, 0.2, 100.0));
        a.add_bidder(bidder("cachey", 0.2, 2.5, 100.0));
        let c = a.clear(200, 0.10);
        assert!(
            (c.slice_demand / 64.0 - 1.0).abs() <= 0.25,
            "slice demand {} vs supply 64",
            c.slice_demand
        );
        assert!(
            (c.bank_demand / 64.0 - 1.0).abs() <= 0.25,
            "bank demand {} vs supply 64",
            c.bank_demand
        );
        assert_eq!(c.allocations.len(), 2);
    }

    #[test]
    fn scarcity_raises_the_clearing_price() {
        let mk = |slices: f64| {
            let mut a = Auction::new(slices, 128.0);
            a.add_bidder(bidder("compute", 1.5, 0.2, 100.0));
            a.add_bidder(bidder("compute2", 1.2, 0.3, 100.0));
            a.clear(200, 0.05)
        };
        let scarce = mk(16.0);
        let plentiful = mk(256.0);
        assert!(
            scarce.slice_price > plentiful.slice_price,
            "scarce {} vs plentiful {}",
            scarce.slice_price,
            plentiful.slice_price
        );
    }

    #[test]
    fn budgets_are_respected_at_clearing() {
        let mut a = Auction::new(32.0, 32.0);
        a.add_bidder(bidder("x", 1.0, 1.0, 50.0));
        let c = a.clear(100, 0.1);
        for alloc in &c.allocations {
            let cost = alloc.vcores
                * (c.slice_price * alloc.shape.slices as f64
                    + c.bank_price * alloc.shape.l2_banks as f64);
            assert!(cost <= 50.0 * 1.0001, "spent {cost} of 50");
        }
    }

    #[test]
    fn demand_substitutes_away_from_expensive_resources() {
        let mut a = Auction::new(1.0, 1.0);
        a.add_bidder(bidder("flex", 1.0, 1.0, 100.0));
        // At slice-heavy prices the bidder buys relatively more banks.
        let (s_cheap_slices, b_cheap_slices, _) = a.demand_at(1.0, 8.0);
        let (s_dear_slices, b_dear_slices, _) = a.demand_at(8.0, 1.0);
        let ratio_cheap = s_cheap_slices / b_cheap_slices.max(1e-9);
        let ratio_dear = s_dear_slices / b_dear_slices.max(1e-9);
        assert!(
            ratio_dear <= ratio_cheap,
            "slice:bank mix should fall when slices are dear: {ratio_dear} vs {ratio_cheap}"
        );
    }

    #[test]
    #[should_panic(expected = "needs bidders")]
    fn empty_auction_rejected() {
        let _ = Auction::new(8.0, 8.0).clear(10, 0.1);
    }

    #[test]
    #[should_panic(expected = "supplies must be positive")]
    fn zero_supply_rejected() {
        let _ = Auction::new(0.0, 8.0);
    }
}
