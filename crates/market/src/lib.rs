//! The IaaS economic model of the Sharing Architecture (paper §2, §5.6–5.10).
//!
//! The Sharing Architecture's pitch is economic: by pricing Slices and
//! cache banks individually, a cloud provider creates a finer, more
//! efficient market than fixed-instance pricing. This crate implements that
//! model end to end:
//!
//! * [`UtilityFn`] — the paper's three customer utility functions
//!   (Table 5): throughput `v·P`, balanced `v·P²`, and latency-critical
//!   `v·P³`, where `v` cores are bought under a budget constraint;
//! * [`Market`] — resource pricing; Markets 1–3 of §5.7 (Slices at 4× the
//!   equal-area price, equal-area, cache at 4×);
//! * [`PerfSurface`] / [`SuiteSurfaces`] — measured performance over the
//!   `(slices, cache)` grid for every benchmark, built by running the
//!   simulator (in parallel, with JSON caching);
//! * [`optimize`] — budget-constrained utility maximization and the
//!   `perf^k/area` metrics of Table 4;
//! * [`efficiency`] — the market-efficiency permutation studies behind
//!   Figures 15 and 16 (Sharing vs best-static-fixed and vs per-utility
//!   heterogeneous baselines);
//! * [`datacenter`] — the big/small-core datacenter mix study (Figure 17);
//! * [`phases`] — the dynamic-phase study of Table 7.
//!
//! # Example
//!
//! ```
//! use sharing_market::{Market, UtilityFn, PerfSurface};
//! use sharing_core::VCoreShape;
//!
//! // A synthetic performance surface: perf grows with slices, saturating.
//! let surface = PerfSurface::from_fn("demo", |shape| {
//!     1.0 - 0.5f64.powi(shape.slices as i32)
//! });
//! let best = sharing_market::optimize::best_utility(
//!     &surface, UtilityFn::Throughput, &Market::MARKET2, 100.0);
//! // A throughput buyer never pays for more slices than they help.
//! assert!(best.shape.slices <= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auction;
pub mod autotuner;
pub mod datacenter;
pub mod efficiency;
pub mod market;
pub mod optimize;
pub mod phases;
pub mod spot;
pub mod surface;
pub mod utility;

pub use auction::{Auction, Bidder, Clearing};
pub use autotuner::{AutoTuner, Objective};
pub use efficiency::{EfficiencyStudy, PairGain};
pub use market::Market;
pub use optimize::{best_metric, best_utility, Chosen};
pub use spot::{DemandProcess, SpotMarket, SpotTick};
pub use surface::{ExperimentSpec, PerfSurface, SuiteSurfaces};
pub use utility::UtilityFn;
