//! Online configuration auto-tuning (paper §4).
//!
//! The paper's software story for customers without a performance model:
//! "they could utilize an auto-tuner. The auto-tuner would slowly search
//! the configuration space by varying the VM instance configuration …
//! \[and\] pick good configurations provided a high-level goal from the
//! user. Such an auto-tuning system would likely require the use of a
//! heartbeat or performance feedback."
//!
//! [`AutoTuner`] is that loop: a deterministic hill climber over the
//! `(slices, banks)` lattice that probes neighbouring configurations with
//! a caller-supplied heartbeat (performance measurement), scores them with
//! the customer's objective, and walks uphill until no neighbour improves.
//! Unlike the exhaustive sweep in [`crate::optimize`], it needs no prior
//! surface — only live feedback — and measures a handful of shapes rather
//! than all 72.

use crate::market::Market;
use crate::utility::UtilityFn;
use sharing_area::AreaModel;
use sharing_core::{VCoreShape, MAX_L2_BANKS, MAX_SLICES};

/// The high-level goal the user hands the tuner.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Objective {
    /// Maximize budget-constrained utility `v · P^k` under a market.
    Utility {
        /// The customer's utility function.
        utility: UtilityFn,
        /// Resource prices.
        market: Market,
        /// Customer budget.
        budget: f64,
    },
    /// Maximize `P^k / area` (the Table 4 metrics).
    PerfPerArea {
        /// Performance exponent.
        k: u32,
        /// The area model.
        area: AreaModel,
    },
    /// Maximize raw performance, cost be damned (a latency-obsessed
    /// customer with headroom in their budget).
    Performance,
}

impl Objective {
    /// Scores a measured performance at a shape.
    #[must_use]
    pub fn score(&self, shape: VCoreShape, perf: f64) -> f64 {
        match *self {
            Objective::Utility {
                utility,
                market,
                budget,
            } => utility.evaluate(perf, market.affordable_cores(shape, budget)),
            Objective::PerfPerArea { k, ref area } => {
                perf.max(0.0).powi(k as i32) / area.vcore_mm2(shape.slices, shape.l2_banks)
            }
            Objective::Performance => perf,
        }
    }
}

/// One probe the tuner made.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Probe {
    /// The shape measured.
    pub shape: VCoreShape,
    /// The heartbeat's performance reading.
    pub perf: f64,
    /// The objective score.
    pub score: f64,
}

/// Neighbour moves on the configuration lattice: ±1 Slice, and the bank
/// count halved/doubled (0 ↔ 1), matching the sweep grid's geometric cache
/// axis.
fn neighbors(s: VCoreShape) -> Vec<VCoreShape> {
    let mut out = Vec::with_capacity(4);
    if s.slices > 1 {
        out.push(VCoreShape::new(s.slices - 1, s.l2_banks).expect("valid"));
    }
    if s.slices < MAX_SLICES {
        out.push(VCoreShape::new(s.slices + 1, s.l2_banks).expect("valid"));
    }
    match s.l2_banks {
        0 => out.push(VCoreShape::new(s.slices, 1).expect("valid")),
        1 => {
            out.push(VCoreShape::new(s.slices, 0).expect("valid"));
            out.push(VCoreShape::new(s.slices, 2).expect("valid"));
        }
        b => {
            out.push(VCoreShape::new(s.slices, b / 2).expect("valid"));
            if b * 2 <= MAX_L2_BANKS {
                out.push(VCoreShape::new(s.slices, b * 2).expect("valid"));
            }
        }
    }
    out
}

/// The online tuner.
///
/// # Example
///
/// ```
/// use sharing_market::autotuner::{AutoTuner, Objective};
/// use sharing_core::VCoreShape;
///
/// // A concave synthetic response: peak at 4 slices, 8 banks.
/// let heartbeat = |s: VCoreShape| {
///     let ds = (s.slices as f64 - 4.0).abs();
///     let blog = if s.l2_banks == 0 { -1.0 } else { (s.l2_banks as f64).log2() };
///     10.0 - ds - (blog - 3.0).abs()
/// };
/// let mut tuner = AutoTuner::new(VCoreShape::new(1, 0)?, Objective::Performance);
/// let best = tuner.run(heartbeat, 50);
/// assert!(tuner.converged());
/// assert_eq!((best.slices, best.l2_banks), (4, 8));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct AutoTuner {
    objective: Objective,
    current: VCoreShape,
    best: Option<Probe>,
    probes: Vec<Probe>,
    converged: bool,
}

impl AutoTuner {
    /// Starts a tuner at an initial configuration.
    #[must_use]
    pub fn new(start: VCoreShape, objective: Objective) -> Self {
        AutoTuner {
            objective,
            current: start,
            best: None,
            probes: Vec::new(),
            converged: false,
        }
    }

    /// The configuration the tuner currently recommends.
    #[must_use]
    pub fn current(&self) -> VCoreShape {
        self.best.map_or(self.current, |p| p.shape)
    }

    /// Whether the last step found no improving neighbour.
    #[must_use]
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Every probe made so far, in order.
    #[must_use]
    pub fn probes(&self) -> &[Probe] {
        &self.probes
    }

    fn measure(
        &mut self,
        shape: VCoreShape,
        heartbeat: &mut impl FnMut(VCoreShape) -> f64,
    ) -> Probe {
        if let Some(&p) = self.probes.iter().find(|p| p.shape == shape) {
            return p; // already measured; reuse the heartbeat reading
        }
        let perf = heartbeat(shape);
        let probe = Probe {
            shape,
            perf,
            score: self.objective.score(shape, perf),
        };
        self.probes.push(probe);
        probe
    }

    /// One tuning step: measure the current shape (if new) and its
    /// neighbours, and move to the best improvement. Returns the new
    /// recommendation.
    pub fn step(&mut self, heartbeat: &mut impl FnMut(VCoreShape) -> f64) -> VCoreShape {
        let here = self.measure(self.current, heartbeat);
        if self.best.is_none_or(|b| here.score > b.score) {
            self.best = Some(here);
        }
        let mut best_neighbor: Option<Probe> = None;
        for n in neighbors(self.current) {
            let p = self.measure(n, heartbeat);
            if best_neighbor.is_none_or(|b| p.score > b.score) {
                best_neighbor = Some(p);
            }
        }
        match best_neighbor {
            Some(n) if n.score > here.score => {
                self.current = n.shape;
                if self.best.is_none_or(|b| n.score > b.score) {
                    self.best = Some(n);
                }
                self.converged = false;
            }
            _ => self.converged = true,
        }
        self.current()
    }

    /// Runs steps until convergence or the probe budget is exhausted;
    /// returns the best configuration found.
    pub fn run(
        &mut self,
        mut heartbeat: impl FnMut(VCoreShape) -> f64,
        probe_budget: usize,
    ) -> VCoreShape {
        while !self.converged && self.probes.len() < probe_budget {
            self.step(&mut heartbeat);
        }
        self.current()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unimodal(peak_s: usize, peak_b_log: i32) -> impl Fn(VCoreShape) -> f64 {
        move |s: VCoreShape| {
            let ds = (s.slices as f64 - peak_s as f64).abs();
            let blog = if s.l2_banks == 0 {
                -1.0
            } else {
                (s.l2_banks as f64).log2()
            };
            let db = (blog - f64::from(peak_b_log)).abs();
            100.0 - 5.0 * ds - 3.0 * db
        }
    }

    #[test]
    fn climbs_to_a_unimodal_peak() {
        // Raw-performance objective isolates the search behaviour.
        let obj = Objective::Performance;
        let f = unimodal(5, 3); // peak at 5 slices, 8 banks
        let mut tuner = AutoTuner::new(VCoreShape::new(1, 0).unwrap(), obj);
        let best = tuner.run(f, 500);
        assert!(tuner.converged());
        assert_eq!(best.slices, 5, "found {best}");
        assert_eq!(best.l2_banks, 8, "found {best}");
    }

    #[test]
    fn probe_budget_bounds_measurements() {
        let obj = Objective::PerfPerArea {
            k: 1,
            area: AreaModel::paper(),
        };
        let f = unimodal(8, 5);
        let mut tuner = AutoTuner::new(VCoreShape::new(1, 0).unwrap(), obj);
        tuner.run(f, 7);
        assert!(
            tuner.probes().len() <= 7 + 4,
            "one step may finish its frontier"
        );
    }

    #[test]
    fn repeated_shapes_are_not_remeasured() {
        let obj = Objective::PerfPerArea {
            k: 1,
            area: AreaModel::paper(),
        };
        let mut calls = 0usize;
        let mut tuner = AutoTuner::new(VCoreShape::new(2, 2).unwrap(), obj);
        tuner.run(
            |s| {
                calls += 1;
                unimodal(2, 1)(s)
            },
            200,
        );
        assert_eq!(calls, tuner.probes().len(), "each shape measured once");
    }

    #[test]
    fn utility_objective_trades_core_count_for_speed() {
        // With Utility1 (throughput) the tuner should prefer cheap shapes
        // when performance is flat.
        let obj = Objective::Utility {
            utility: UtilityFn::Throughput,
            market: Market::MARKET2,
            budget: 64.0,
        };
        let mut tuner = AutoTuner::new(VCoreShape::new(4, 8).unwrap(), obj);
        let best = tuner.run(|_| 1.0, 500);
        assert!(tuner.converged());
        assert_eq!(best.slices, 1, "flat perf → buy the cheapest core: {best}");
        assert_eq!(best.l2_banks, 0);
    }

    #[test]
    fn neighbors_stay_on_the_lattice() {
        for s in VCoreShape::sweep_grid() {
            for n in neighbors(s) {
                assert!(n.slices >= 1 && n.slices <= MAX_SLICES);
                assert!(n.l2_banks <= MAX_L2_BANKS);
                assert_ne!(n, s);
            }
        }
    }
}
