//! Performance surfaces over the configuration grid.
//!
//! Every economic experiment consumes `P(c, s)`: the measured performance
//! of each benchmark at each VCore shape. This module builds those
//! surfaces by running the simulator over the paper's sweep grid
//! (Equation 3: 1–8 Slices × 0 KB–8 MB), in parallel, with optional JSON
//! caching so the bench harness only ever pays for a sweep once.

use sharing_core::{par, SimConfig, Simulator, VCoreShape, VmSimulator};
use sharing_json::{json_struct, FromJson, Json, JsonError, ToJson};
use sharing_trace::{Benchmark, TraceCache, TraceSpec, ALL_BENCHMARKS};
use std::collections::BTreeMap;
use std::path::Path;

/// How a sweep's traces are generated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ExperimentSpec {
    /// Dynamic instructions per thread.
    pub trace_len: usize,
    /// Generation seed.
    pub seed: u64,
    /// Workload calibration version the sweep was built against (see
    /// [`sharing_trace::CALIBRATION_VERSION`]); result caches keyed on a
    /// spec invalidate when calibration changes.
    pub calibration: u32,
}

impl ExperimentSpec {
    /// The default experiment size used by the bench harness: long enough
    /// for the scaled working sets to exhibit reuse, short enough that a
    /// full 72-configuration × 15-benchmark sweep is minutes, not hours.
    #[must_use]
    pub fn standard() -> Self {
        ExperimentSpec {
            trace_len: 60_000,
            seed: 0xA5_2014,
            calibration: sharing_trace::CALIBRATION_VERSION,
        }
    }

    /// A reduced size for unit tests.
    #[must_use]
    pub fn quick() -> Self {
        ExperimentSpec {
            trace_len: 6_000,
            seed: 0xA5_2014,
            calibration: sharing_trace::CALIBRATION_VERSION,
        }
    }

    fn trace_spec(&self) -> TraceSpec {
        TraceSpec::new(self.trace_len, self.seed)
    }
}

impl Default for ExperimentSpec {
    fn default() -> Self {
        ExperimentSpec::standard()
    }
}

json_struct!(ExperimentSpec {
    trace_len,
    seed,
    calibration
});

/// One benchmark's measured performance at every swept shape.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfSurface {
    name: String,
    /// Serialized as `(shape, perf)` pairs because JSON map keys must be
    /// strings.
    points: BTreeMap<VCoreShape, f64>,
}

impl ToJson for PerfSurface {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            (
                "points",
                Json::Arr(
                    self.points
                        .iter()
                        .map(|(s, p)| Json::Arr(vec![s.to_json(), p.to_json()]))
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for PerfSurface {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let name = String::from_json(
            v.get("name")
                .ok_or_else(|| JsonError("PerfSurface missing field `name`".into()))?,
        )?;
        let pairs = Vec::<(VCoreShape, f64)>::from_json(
            v.get("points")
                .ok_or_else(|| JsonError("PerfSurface missing field `points`".into()))?,
        )?;
        if pairs.is_empty() {
            return Err(JsonError("PerfSurface needs at least one point".into()));
        }
        Ok(PerfSurface {
            name,
            points: pairs.into_iter().collect(),
        })
    }
}

impl PerfSurface {
    /// Builds a surface from an explicit point set.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    #[must_use]
    pub fn new(name: impl Into<String>, points: BTreeMap<VCoreShape, f64>) -> Self {
        assert!(!points.is_empty(), "a surface needs at least one point");
        PerfSurface {
            name: name.into(),
            points,
        }
    }

    /// Builds a surface by evaluating `f` over the paper's sweep grid
    /// (handy for tests and examples).
    #[must_use]
    pub fn from_fn(name: impl Into<String>, f: impl Fn(VCoreShape) -> f64) -> Self {
        let points = VCoreShape::sweep_grid().map(|s| (s, f(s))).collect();
        PerfSurface::new(name, points)
    }

    /// The benchmark name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Performance at a shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape was not swept.
    #[must_use]
    pub fn perf(&self, shape: VCoreShape) -> f64 {
        *self
            .points
            .get(&shape)
            .unwrap_or_else(|| panic!("shape {shape} not in surface {}", self.name))
    }

    /// Performance at a shape, if swept.
    #[must_use]
    pub fn get(&self, shape: VCoreShape) -> Option<f64> {
        self.points.get(&shape).copied()
    }

    /// All swept `(shape, perf)` points.
    pub fn iter(&self) -> impl Iterator<Item = (VCoreShape, f64)> + '_ {
        self.points.iter().map(|(&s, &p)| (s, p))
    }
}

/// Performance surfaces for the whole benchmark suite.
#[derive(Clone, Debug, PartialEq)]
pub struct SuiteSurfaces {
    spec: ExperimentSpec,
    surfaces: BTreeMap<Benchmark, PerfSurface>,
}

impl ToJson for SuiteSurfaces {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("spec", self.spec.to_json()),
            (
                "surfaces",
                Json::Obj(
                    self.surfaces
                        .iter()
                        .map(|(b, s)| (b.name().to_string(), s.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for SuiteSurfaces {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let spec = ExperimentSpec::from_json(
            v.get("spec")
                .ok_or_else(|| JsonError("SuiteSurfaces missing field `spec`".into()))?,
        )?;
        let obj = v
            .get("surfaces")
            .and_then(Json::as_obj)
            .ok_or_else(|| JsonError("SuiteSurfaces missing object `surfaces`".into()))?;
        let mut surfaces = BTreeMap::new();
        for (name, sv) in obj {
            let bench = Benchmark::from_name(name)
                .ok_or_else(|| JsonError(format!("unknown benchmark `{name}`")))?;
            surfaces.insert(bench, PerfSurface::from_json(sv)?);
        }
        Ok(SuiteSurfaces { spec, surfaces })
    }
}

impl SuiteSurfaces {
    /// Assembles suite surfaces from already-measured parts (tests and
    /// external tooling; normal callers use [`SuiteSurfaces::build`]).
    ///
    /// # Panics
    ///
    /// Panics if `surfaces` is empty.
    #[must_use]
    pub fn from_parts(spec: ExperimentSpec, surfaces: BTreeMap<Benchmark, PerfSurface>) -> Self {
        assert!(!surfaces.is_empty(), "a suite needs at least one surface");
        SuiteSurfaces { spec, surfaces }
    }

    /// Measures one benchmark at one shape (single-threaded benchmarks on
    /// a [`Simulator`], PARSEC on a [`VmSimulator`] with four VCores and a
    /// shared L2, per §5.3), sharing the process-wide [`TraceCache`] so
    /// all 72 shapes of a sweep reuse one generated trace.
    #[must_use]
    pub fn measure(bench: Benchmark, shape: VCoreShape, spec: &ExperimentSpec) -> f64 {
        Self::measure_with(bench, shape, spec, TraceCache::global())
    }

    /// [`SuiteSurfaces::measure`] against an explicit trace cache (tests
    /// use a private cache to assert generation counts without racing
    /// other users of the global one).
    #[must_use]
    pub fn measure_with(
        bench: Benchmark,
        shape: VCoreShape,
        spec: &ExperimentSpec,
        cache: &TraceCache,
    ) -> f64 {
        Self::measure_with_engine(
            bench,
            shape,
            spec,
            cache,
            sharing_core::EngineKind::default(),
        )
    }

    /// [`SuiteSurfaces::measure_with`] on an explicit engine
    /// implementation. Both engines produce byte-identical results; the
    /// benchmark harness uses this to time them against each other.
    #[must_use]
    pub fn measure_with_engine(
        bench: Benchmark,
        shape: VCoreShape,
        spec: &ExperimentSpec,
        cache: &TraceCache,
        engine: sharing_core::EngineKind,
    ) -> f64 {
        let cfg = SimConfig::with_shape(shape.slices, shape.l2_banks)
            .expect("sweep grid shapes are valid");
        if bench.is_parsec() {
            let workload = cache.threaded(bench, &spec.trace_spec());
            let r = VmSimulator::new(cfg)
                .expect("valid config")
                .with_engine(engine)
                .run(&workload);
            // Per-VCore performance: VM IPC divided by thread count, so
            // PARSEC points are comparable to single-core P(c, s).
            r.ipc() / workload.thread_count() as f64
        } else {
            let trace = cache.single(bench, &spec.trace_spec());
            Simulator::new(cfg)
                .expect("valid config")
                .run_with(&trace, sharing_core::RunOptions::new().engine(engine))
                .result
                .ipc()
        }
    }

    /// Builds surfaces for every benchmark over the full sweep grid,
    /// fanning the (benchmark × shape) space across all CPUs.
    #[must_use]
    pub fn build(spec: ExperimentSpec) -> Self {
        Self::build_subset(spec, &ALL_BENCHMARKS)
    }

    /// Builds surfaces for a subset of the suite, machine-wide parallel.
    #[must_use]
    pub fn build_subset(spec: ExperimentSpec, benches: &[Benchmark]) -> Self {
        Self::build_subset_with(spec, benches, TraceCache::global(), par::resolve_jobs(None))
    }

    /// [`SuiteSurfaces::build_subset`] with an explicit trace cache and
    /// worker count. Results are collected by task index, so the built
    /// surfaces (and anything serialized from them) are identical for any
    /// `jobs`.
    #[must_use]
    pub fn build_subset_with(
        spec: ExperimentSpec,
        benches: &[Benchmark],
        cache: &TraceCache,
        jobs: usize,
    ) -> Self {
        Self::build_subset_with_engine(spec, benches, cache, jobs, Default::default())
    }

    /// [`SuiteSurfaces::build_subset_with`] on an explicit engine
    /// implementation (see [`SuiteSurfaces::measure_with_engine`]).
    #[must_use]
    pub fn build_subset_with_engine(
        spec: ExperimentSpec,
        benches: &[Benchmark],
        cache: &TraceCache,
        jobs: usize,
        engine: sharing_core::EngineKind,
    ) -> Self {
        let shapes: Vec<VCoreShape> = VCoreShape::sweep_grid().collect();
        let mut tasks: Vec<(Benchmark, VCoreShape)> = Vec::new();
        for &b in benches {
            for &s in &shapes {
                tasks.push((b, s));
            }
        }
        let perfs = par::map_indexed(jobs, &tasks, |_, &(b, s)| {
            Self::measure_with_engine(b, s, &spec, cache, engine)
        });
        let mut surfaces: BTreeMap<Benchmark, BTreeMap<VCoreShape, f64>> = BTreeMap::new();
        for (&(b, s), &p) in tasks.iter().zip(&perfs) {
            surfaces.entry(b).or_default().insert(s, p);
        }
        SuiteSurfaces {
            spec,
            surfaces: surfaces
                .into_iter()
                .map(|(b, pts)| (b, PerfSurface::new(b.name(), pts)))
                .collect(),
        }
    }

    /// Loads surfaces from a JSON cache if it matches `spec`, otherwise
    /// builds them and writes the cache. I/O failures fall back to a fresh
    /// build (the cache is an optimization, not a requirement).
    #[must_use]
    pub fn build_or_load(spec: ExperimentSpec, cache: &Path) -> Self {
        if let Ok(text) = std::fs::read_to_string(cache) {
            if let Ok(loaded) = sharing_json::from_str::<SuiteSurfaces>(&text) {
                if loaded.spec == spec && loaded.surfaces.len() == ALL_BENCHMARKS.len() {
                    return loaded;
                }
            }
        }
        let built = Self::build(spec);
        let _ = std::fs::write(cache, sharing_json::to_string(&built));
        built
    }

    /// The spec these surfaces were built with.
    #[must_use]
    pub fn spec(&self) -> ExperimentSpec {
        self.spec
    }

    /// The surface for one benchmark.
    ///
    /// # Panics
    ///
    /// Panics if the benchmark was not part of the build.
    #[must_use]
    pub fn surface(&self, bench: Benchmark) -> &PerfSurface {
        self.surfaces
            .get(&bench)
            .unwrap_or_else(|| panic!("{bench} not in suite surfaces"))
    }

    /// Iterates `(benchmark, surface)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Benchmark, &PerfSurface)> {
        self.surfaces.iter().map(|(&b, s)| (b, s))
    }

    /// The benchmarks present.
    #[must_use]
    pub fn benchmarks(&self) -> Vec<Benchmark> {
        self.surfaces.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_covers_the_grid() {
        let s = PerfSurface::from_fn("t", |sh| sh.slices as f64);
        assert_eq!(s.iter().count(), 72);
        assert_eq!(s.perf(VCoreShape::new(3, 4).unwrap()), 3.0);
        assert_eq!(s.get(VCoreShape::new(8, 128).unwrap()), Some(8.0));
    }

    #[test]
    #[should_panic(expected = "not in surface")]
    fn missing_shape_panics() {
        let mut pts = BTreeMap::new();
        pts.insert(VCoreShape::new(1, 0).unwrap(), 1.0);
        let s = PerfSurface::new("t", pts);
        let _ = s.perf(VCoreShape::new(2, 0).unwrap());
    }

    #[test]
    fn build_subset_produces_full_surfaces() {
        let suite = SuiteSurfaces::build_subset(ExperimentSpec::quick(), &[Benchmark::Hmmer]);
        let surf = suite.surface(Benchmark::Hmmer);
        assert_eq!(surf.iter().count(), 72);
        assert!(surf.iter().all(|(_, p)| p > 0.0));
    }

    #[test]
    fn build_generates_each_trace_exactly_once() {
        // The regression PR 5 fixes: measure() used to regenerate the
        // identical trace for every one of the 72 shapes. With the cache,
        // a cold build does one generation per (benchmark, len, seed).
        let cache = TraceCache::with_capacity(8);
        let spec = ExperimentSpec::quick();
        let benches = [Benchmark::Hmmer, Benchmark::Swaptions];
        let suite = SuiteSurfaces::build_subset_with(spec, &benches, &cache, 4);
        assert_eq!(
            cache.generations(),
            benches.len() as u64,
            "one trace generation per benchmark"
        );
        assert_eq!(cache.misses(), benches.len() as u64);
        assert_eq!(
            cache.hits() + cache.misses(),
            (benches.len() * 72) as u64,
            "every sweep point consults the cache"
        );
        assert_eq!(suite.surface(Benchmark::Hmmer).iter().count(), 72);
    }

    #[test]
    fn parallel_build_is_identical_to_sequential() {
        let spec = ExperimentSpec::quick();
        let benches = [Benchmark::Mcf, Benchmark::Dedup];
        let seq =
            SuiteSurfaces::build_subset_with(spec, &benches, &TraceCache::with_capacity(8), 1);
        let par =
            SuiteSurfaces::build_subset_with(spec, &benches, &TraceCache::with_capacity(8), 4);
        assert_eq!(
            sharing_json::to_string(&seq),
            sharing_json::to_string(&par),
            "worker count must not change a single byte of the surfaces"
        );
    }

    #[test]
    fn parsec_measure_is_per_vcore() {
        let spec = ExperimentSpec::quick();
        let p = SuiteSurfaces::measure(Benchmark::Swaptions, VCoreShape::new(1, 2).unwrap(), &spec);
        assert!(p > 0.0 && p < 2.0, "per-VCore IPC expected, got {p}");
    }

    #[test]
    fn json_roundtrip() {
        let suite = SuiteSurfaces::build_subset(ExperimentSpec::quick(), &[Benchmark::Hmmer]);
        let json = sharing_json::to_string(&suite);
        let back: SuiteSurfaces = sharing_json::from_str(&json).unwrap();
        assert_eq!(suite.spec(), back.spec());
        assert_eq!(suite.benchmarks(), back.benchmarks());
        // Floats survive JSON up to printing precision.
        for (b, surf) in suite.iter() {
            for (shape, perf) in surf.iter() {
                let other = back.surface(b).perf(shape);
                assert!(
                    (perf - other).abs() < 1e-9,
                    "{b} {shape}: {perf} vs {other}"
                );
            }
        }
    }
}
