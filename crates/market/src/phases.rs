//! Dynamic program phases (paper §5.10, Table 7).
//!
//! The paper splits gcc into ten segments, finds each segment's optimal
//! VCore shape under three `perf^k/area` metrics, and compares a
//! dynamically reconfigured VCore (paying 10 000 cycles when the cache
//! configuration changes, 500 when only Slices change) against the best
//! *single* static shape for the whole program. Gains reach 19.4 % for
//! `performance³/area`.

use sharing_area::AreaModel;
use sharing_core::{ReconfigCosts, SimConfig, Simulator, VCoreShape};
use sharing_trace::{gcc_phase_trace, TraceSpec};
use std::collections::BTreeMap;

/// Per-phase measurements for one metric exponent.
#[derive(Clone, Debug)]
pub struct PhaseRow {
    /// Metric exponent `k` in `perf^k/area`.
    pub k: u32,
    /// Optimal shape per phase.
    pub per_phase: Vec<VCoreShape>,
    /// The single static shape with the best whole-program metric.
    pub static_best: VCoreShape,
    /// Dynamic-over-static gain (e.g. `0.15` = 15 %), reconfiguration
    /// costs included.
    pub gain: f64,
}

/// The Table 7 study result.
#[derive(Clone, Debug)]
pub struct PhaseStudy {
    /// Number of phases (the paper uses 10).
    pub phases: usize,
    /// One row per metric exponent (1, 2, 3).
    pub rows: Vec<PhaseRow>,
}

/// Cycles each phase takes at each candidate shape, measured once and
/// shared by all three metrics.
type PhaseCycles = Vec<BTreeMap<VCoreShape, (u64, u64)>>; // (cycles, insts)

fn measure_phases(spec: &TraceSpec, phases: usize, shapes: &[VCoreShape]) -> PhaseCycles {
    let tasks: Vec<(usize, VCoreShape)> = (1..=phases)
        .flat_map(|p| shapes.iter().map(move |&s| (p, s)))
        .collect();
    let results = std::sync::Mutex::new(Vec::with_capacity(tasks.len()));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&(p, shape)) = tasks.get(i) else {
                    break;
                };
                let trace = gcc_phase_trace(p, spec);
                let cfg = SimConfig::with_shape(shape.slices, shape.l2_banks)
                    .expect("candidate shapes are valid");
                let r = Simulator::new(cfg)
                    .expect("valid config")
                    .run_with(&trace, sharing_core::RunOptions::new())
                    .result;
                results
                    .lock()
                    .expect("phase lock")
                    .push((p, shape, (r.cycles, r.instructions)));
            });
        }
    });
    let mut out: PhaseCycles = vec![BTreeMap::new(); phases];
    for (p, shape, v) in results.into_inner().expect("phase lock") {
        out[p - 1].insert(shape, v);
    }
    out
}

fn metric(perf: f64, k: u32, shape: VCoreShape, area: &AreaModel) -> f64 {
    perf.powi(k as i32) / area.vcore_mm2(shape.slices, shape.l2_banks)
}

/// Runs the phase study on gcc's ten phases.
///
/// `shapes` is the candidate configuration set (defaults to the full sweep
/// grid via [`run_study`]); `spec.len` is the per-phase trace length.
#[must_use]
pub fn run_study_with(
    spec: &TraceSpec,
    phases: usize,
    shapes: &[VCoreShape],
    costs: ReconfigCosts,
    area: &AreaModel,
) -> PhaseStudy {
    assert!(phases >= 1 && !shapes.is_empty());
    let measured = measure_phases(spec, phases, shapes);
    let rows = [1u32, 2, 3]
        .into_iter()
        .map(|k| {
            // Dynamic: the reconfiguration-aware optimal schedule, by
            // dynamic programming over (phase, shape). Each phase's score
            // is ln(perf^k/area) with the transition's reconfiguration
            // cycles charged against that phase's performance — exactly
            // the accounting of the paper's Table 7.
            let score =
                |phase: &BTreeMap<VCoreShape, (u64, u64)>, shape: VCoreShape, reconfig: u64| {
                    let (cycles, insts) = phase[&shape];
                    let perf = insts as f64 / (cycles + reconfig) as f64;
                    metric(perf, k, shape, area).ln()
                };
            // value[s] = best log-sum ending at shape s; back[phase][s].
            let mut value: Vec<f64> = shapes.iter().map(|&s| score(&measured[0], s, 0)).collect();
            let mut back: Vec<Vec<usize>> = Vec::with_capacity(phases);
            for phase in &measured[1..] {
                let mut next_value = vec![f64::NEG_INFINITY; shapes.len()];
                let mut choice = vec![0usize; shapes.len()];
                for (si, &s) in shapes.iter().enumerate() {
                    for (pi, &p) in shapes.iter().enumerate() {
                        let cand = value[pi] + score(phase, s, costs.cost(p, s));
                        if cand > next_value[si] {
                            next_value[si] = cand;
                            choice[si] = pi;
                        }
                    }
                }
                back.push(choice);
                value = next_value;
            }
            let (mut best_idx, &best_log) = value
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| a.total_cmp(b))
                .expect("shapes measured");
            let dyn_gme = (best_log / phases as f64).exp();
            let mut per_phase = vec![shapes[best_idx]];
            for choice in back.iter().rev() {
                best_idx = choice[best_idx];
                per_phase.push(shapes[best_idx]);
            }
            per_phase.reverse();

            // Static: one shape for every phase, no reconfiguration.
            let (static_best, static_gme) = shapes
                .iter()
                .map(|&shape| {
                    let log_sum: f64 = measured
                        .iter()
                        .map(|phase| {
                            let (cycles, insts) = phase[&shape];
                            metric(insts as f64 / cycles as f64, k, shape, area).ln()
                        })
                        .sum();
                    (shape, (log_sum / phases as f64).exp())
                })
                .max_by(|(_, a), (_, b)| a.total_cmp(b))
                .expect("shapes measured");

            PhaseRow {
                k,
                per_phase,
                static_best,
                gain: dyn_gme / static_gme - 1.0,
            }
        })
        .collect();
    PhaseStudy { phases, rows }
}

/// Runs the paper's Table 7 configuration: ten gcc phases over the full
/// sweep grid with the paper's reconfiguration costs.
#[must_use]
pub fn run_study(spec: &TraceSpec) -> PhaseStudy {
    let shapes: Vec<VCoreShape> = VCoreShape::sweep_grid().collect();
    run_study_with(
        spec,
        10,
        &shapes,
        ReconfigCosts::paper(),
        &AreaModel::paper(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_shapes() -> Vec<VCoreShape> {
        [(1, 0), (1, 2), (2, 2), (4, 8), (5, 16)]
            .into_iter()
            .map(|(s, b)| VCoreShape::new(s, b).unwrap())
            .collect()
    }

    #[test]
    fn study_produces_three_rows_over_all_phases() {
        let spec = TraceSpec::new(4_000, 9);
        let study = run_study_with(
            &spec,
            3,
            &small_shapes(),
            ReconfigCosts::paper(),
            &AreaModel::paper(),
        );
        assert_eq!(study.rows.len(), 3);
        for row in &study.rows {
            assert_eq!(row.per_phase.len(), 3);
            assert!(row.gain > -1.0, "gain is a ratio-minus-one");
        }
        assert_eq!(study.rows[0].k, 1);
        assert_eq!(study.rows[2].k, 3);
    }

    #[test]
    fn dynamic_beats_or_matches_static_without_reconfig_costs() {
        // With free reconfiguration the per-phase optimum can only beat a
        // single static choice.
        let spec = TraceSpec::new(4_000, 9);
        let free = ReconfigCosts {
            slice_only: 0,
            cache_change: 0,
        };
        let study = run_study_with(&spec, 3, &small_shapes(), free, &AreaModel::paper());
        for row in &study.rows {
            assert!(
                row.gain >= -1e-9,
                "k={} gain {} should be non-negative",
                row.k,
                row.gain
            );
        }
    }

    #[test]
    fn higher_metric_exponent_prefers_bigger_phase_configs() {
        let spec = TraceSpec::new(4_000, 9);
        let study = run_study_with(
            &spec,
            3,
            &small_shapes(),
            ReconfigCosts::paper(),
            &AreaModel::paper(),
        );
        let avg = |row: &PhaseRow| {
            row.per_phase.iter().map(|s| s.slices).sum::<usize>() as f64
                / row.per_phase.len() as f64
        };
        assert!(avg(&study.rows[2]) >= avg(&study.rows[0]));
    }
}
