//! Customer utility functions (paper §2.2, §5.6, Table 5).

use std::fmt;

/// A Cloud customer's utility function `U(c, s, v) = v · P(c, s)^k`.
///
/// `v` is the number of (virtual) cores the customer can afford under
/// their budget, and `P` the single-thread performance of one VCore with
/// `c` cache and `s` Slices. The paper's three examples (Table 5), sorted
/// from throughput-oriented to single-thread-performance-oriented:
///
/// * **Utility1** (`v·P`): latency-tolerant bulk work — backup encryption,
///   image resizing, off-line MapReduce (Equation 4);
/// * **Utility2** (`v·P²`): balanced customers who weight sequential time
///   to completion like `Energy·Delay²` research weights delay;
/// * **Utility3** (`v·P³`): On-Line Data-Intensive workloads needing
///   sub-second responsiveness (Equation 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UtilityFn {
    /// `v · P` — throughput computing (the paper's Utility1).
    Throughput,
    /// `v · P²` — balanced (Utility2).
    Balanced,
    /// `v · P³` — single-stream latency critical (Utility3).
    LatencyCritical,
}

/// The paper's three utility functions, in Table 5 order.
pub const ALL_UTILITIES: [UtilityFn; 3] = [
    UtilityFn::Throughput,
    UtilityFn::Balanced,
    UtilityFn::LatencyCritical,
];

impl UtilityFn {
    /// The performance exponent `k`.
    #[must_use]
    pub fn exponent(self) -> u32 {
        match self {
            UtilityFn::Throughput => 1,
            UtilityFn::Balanced => 2,
            UtilityFn::LatencyCritical => 3,
        }
    }

    /// Evaluates `U = v · P^k`.
    ///
    /// Negative inputs are clamped to zero (performance and core counts
    /// are physical quantities).
    #[must_use]
    pub fn evaluate(self, perf: f64, v: f64) -> f64 {
        let p = perf.max(0.0);
        let v = v.max(0.0);
        v * p.powi(self.exponent() as i32)
    }

    /// The paper's name for this function.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            UtilityFn::Throughput => "Utility1",
            UtilityFn::Balanced => "Utility2",
            UtilityFn::LatencyCritical => "Utility3",
        }
    }
}

impl fmt::Display for UtilityFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponents_match_table5() {
        assert_eq!(UtilityFn::Throughput.exponent(), 1);
        assert_eq!(UtilityFn::Balanced.exponent(), 2);
        assert_eq!(UtilityFn::LatencyCritical.exponent(), 3);
    }

    #[test]
    fn higher_exponents_favor_performance_over_count() {
        // Option A: 4 cores at perf 1. Option B: 1 core at perf 2.
        let (va, pa) = (4.0, 1.0);
        let (vb, pb) = (1.0, 2.0);
        assert!(UtilityFn::Throughput.evaluate(pa, va) > UtilityFn::Throughput.evaluate(pb, vb));
        assert!(
            UtilityFn::LatencyCritical.evaluate(pb, vb)
                > UtilityFn::LatencyCritical.evaluate(pa, va)
        );
    }

    #[test]
    fn evaluate_clamps_negatives() {
        assert_eq!(UtilityFn::Balanced.evaluate(-1.0, 2.0), 0.0);
        assert_eq!(UtilityFn::Balanced.evaluate(2.0, -1.0), 0.0);
    }

    #[test]
    fn names_are_the_papers() {
        let names: Vec<_> = ALL_UTILITIES.iter().map(|u| u.name()).collect();
        assert_eq!(names, ["Utility1", "Utility2", "Utility3"]);
    }
}
