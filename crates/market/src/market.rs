//! Resource markets (paper §5.7).
//!
//! The provider prices Slices and 64 KB cache banks separately; a customer
//! with budget `B` choosing a VCore of `s` Slices and `c` banks can afford
//! `v = B / (C_s·s + C_c·c)` such cores (Equation 2).

use sharing_core::VCoreShape;
use std::fmt;

/// A pricing of the two sub-core resources, in abstract cost units.
///
/// The natural currency is *bank units*: under the area model one Slice
/// occupies the area of two 64 KB banks, so the equal-area Market 2 prices
/// a Slice at 2 and a bank at 1 ("1 Slice costs the same as 128 KB Cache").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Market {
    /// Human name ("Market1"…).
    pub name: &'static str,
    /// Price of one Slice.
    pub slice_price: f64,
    /// Price of one 64 KB cache bank.
    pub bank_price: f64,
}

impl Market {
    /// Market 1: Slices at four times their equal-area cost (demand for
    /// compute outstrips supply).
    pub const MARKET1: Market = Market {
        name: "Market1",
        slice_price: 8.0,
        bank_price: 1.0,
    };

    /// Market 2: prices track area (the paper's primary market).
    pub const MARKET2: Market = Market {
        name: "Market2",
        slice_price: 2.0,
        bank_price: 1.0,
    };

    /// Market 3: cache at four times its equal-area cost.
    pub const MARKET3: Market = Market {
        name: "Market3",
        slice_price: 2.0,
        bank_price: 4.0,
    };

    /// All three markets of §5.7.
    pub const ALL: [Market; 3] = [Market::MARKET1, Market::MARKET2, Market::MARKET3];

    /// Cost of one VCore of this shape.
    ///
    /// A zero-cost configuration is impossible: every VCore has at least
    /// one Slice.
    #[must_use]
    pub fn vcore_cost(&self, shape: VCoreShape) -> f64 {
        self.slice_price * shape.slices as f64 + self.bank_price * shape.l2_banks as f64
    }

    /// How many VCores of this shape a budget buys (Equation 2; fractional
    /// `v` is fine — the paper treats `v` as continuous by replicating
    /// across VMs).
    #[must_use]
    pub fn affordable_cores(&self, shape: VCoreShape, budget: f64) -> f64 {
        budget / self.vcore_cost(shape)
    }
}

impl fmt::Display for Market {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (slice {}, bank {})",
            self.name, self.slice_price, self.bank_price
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(s: usize, b: usize) -> VCoreShape {
        VCoreShape::new(s, b).unwrap()
    }

    #[test]
    fn market2_is_equal_area() {
        // One Slice == two banks == 128 KB of cache.
        let m = Market::MARKET2;
        assert_eq!(m.vcore_cost(shape(1, 0)), m.bank_price * 2.0);
    }

    #[test]
    fn market1_and_3_skew_prices_4x() {
        assert_eq!(
            Market::MARKET1.slice_price,
            4.0 * Market::MARKET2.slice_price
        );
        assert_eq!(Market::MARKET3.bank_price, 4.0 * Market::MARKET2.bank_price);
    }

    #[test]
    fn budget_buys_inverse_to_cost() {
        let m = Market::MARKET2;
        let small = m.affordable_cores(shape(1, 0), 100.0);
        let big = m.affordable_cores(shape(4, 8), 100.0);
        assert!(small > big);
        assert!((small - 50.0).abs() < 1e-12);
        assert!((big - 100.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn display_names() {
        for m in Market::ALL {
            assert!(m.to_string().contains(m.name));
        }
    }
}
