//! Datacenter heterogeneity comparison (paper §5.9, Figure 17).
//!
//! A statically heterogeneous datacenter mixes "big" cores (for hmmer-class
//! workloads the paper uses gobmk's peak-Utility1 shape: 3 Slices + 256 KB)
//! and "small" cores (hmmer's peak: 1 Slice + 0 KB). For a fixed area
//! budget, the study varies the big:small area split and the application
//! mix, schedules the jobs onto the cores, and measures delivered
//! throughput per area. The punchline: the best core ratio moves with the
//! application mix, so *no* fixed ratio serves all mixes — whereas the
//! Sharing Architecture re-synthesizes its cores on demand.

use crate::surface::SuiteSurfaces;
use sharing_area::AreaModel;
use sharing_core::VCoreShape;
use sharing_trace::Benchmark;

/// The big core: gobmk's peak-Utility1 shape (3 Slices, 256 KB — the
/// paper's §5.9 big core).
#[must_use]
pub fn big_core() -> VCoreShape {
    VCoreShape::new(3, 4).expect("static shape is valid")
}

/// The small core: hmmer's peak-Utility1 shape. The paper measured
/// 1 Slice + 0 KB; in this reproduction hmmer's measured peak carries one
/// 64 KB bank (our no-L2 configurations are less catastrophic than the
/// paper's — see EXPERIMENTS.md), so the small core is 1 Slice + 64 KB.
#[must_use]
pub fn small_core() -> VCoreShape {
    VCoreShape::new(1, 1).expect("static shape is valid")
}

/// One cell of Figure 17: a core-area split and an application mix, with
/// the throughput the mix achieves on that datacenter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MixPoint {
    /// Fraction of datacenter area spent on big cores.
    pub big_area_frac: f64,
    /// Fraction of jobs that are the first application.
    pub app_a_frac: f64,
    /// Aggregate throughput per unit area (sum of per-core performance of
    /// scheduled jobs, divided by datacenter area).
    pub throughput_per_area: f64,
}

/// The completed study.
#[derive(Clone, Debug)]
pub struct DatacenterStudy {
    /// Application A (the paper uses hmmer).
    pub app_a: Benchmark,
    /// Application B (the paper uses gobmk).
    pub app_b: Benchmark,
    /// Swept core-area fractions.
    pub big_fracs: Vec<f64>,
    /// Swept application mixes.
    pub app_fracs: Vec<f64>,
    /// `points[mix][ratio]`.
    pub points: Vec<Vec<MixPoint>>,
}

impl DatacenterStudy {
    /// For each application mix, the big-core area fraction with the best
    /// throughput per area.
    #[must_use]
    pub fn optimal_ratio_per_mix(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|row| {
                let best = row
                    .iter()
                    .max_by(|a, b| a.throughput_per_area.total_cmp(&b.throughput_per_area))
                    .expect("rows are non-empty");
                (best.app_a_frac, best.big_area_frac)
            })
            .collect()
    }

    /// Whether the optimal core ratio changes across application mixes —
    /// the paper's conclusion that "a fixed mixture of big and small cores
    /// cannot always optimally service heterogeneous workloads".
    #[must_use]
    pub fn no_single_ratio_is_optimal(&self) -> bool {
        let ratios: Vec<f64> = self
            .optimal_ratio_per_mix()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        ratios.iter().any(|&r| (r - ratios[0]).abs() > f64::EPSILON)
    }
}

/// Schedules `jobs_a` + `jobs_b` onto `n_big` + `n_small` cores to
/// maximize total delivered performance, one job per core. Jobs that find
/// no core wait (contribute nothing); cores without jobs idle. Greedy on
/// comparative advantage, optimal for two job classes and two core
/// classes.
fn schedule(
    perf: impl Fn(Benchmark, VCoreShape) -> f64,
    app_a: Benchmark,
    app_b: Benchmark,
    jobs_a: f64,
    jobs_b: f64,
    n_big: f64,
    n_small: f64,
) -> f64 {
    let pa_big = perf(app_a, big_core());
    let pa_small = perf(app_a, small_core());
    let pb_big = perf(app_b, big_core());
    let pb_small = perf(app_b, small_core());
    // Give big cores to the class with the larger big-vs-small advantage.
    let (first, first_jobs, second, second_jobs) = if pa_big - pa_small >= pb_big - pb_small {
        ((pa_big, pa_small), jobs_a, (pb_big, pb_small), jobs_b)
    } else {
        ((pb_big, pb_small), jobs_b, (pa_big, pa_small), jobs_a)
    };
    let mut big_left = n_big;
    let mut small_left = n_small;
    let mut total = 0.0;
    for ((p_big, p_small), mut jobs) in [(first, first_jobs), (second, second_jobs)] {
        let on_big = jobs.min(big_left);
        total += on_big * p_big;
        big_left -= on_big;
        jobs -= on_big;
        let on_small = jobs.min(small_left);
        total += on_small * p_small;
        small_left -= on_small;
        // Remaining jobs are queued: they contribute no additional
        // simultaneous throughput.
    }
    total
}

/// Runs the Figure 17 study over the given suite surfaces.
///
/// The datacenter serves a **fixed customer population** of `J` jobs in
/// the given application mix, on a fixed silicon budget sized between the
/// all-small (`2J` bank-units) and all-big (`10J`) extremes — so choosing
/// big cores genuinely trades machine count for per-machine performance.
/// For each big-core area split, the jobs are scheduled for maximum
/// delivered performance.
#[must_use]
pub fn run_study(
    suite: &SuiteSurfaces,
    app_a: Benchmark,
    app_b: Benchmark,
    area: &AreaModel,
) -> DatacenterStudy {
    let big_fracs: Vec<f64> = vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0];
    let app_fracs: Vec<f64> = vec![0.0, 0.25, 0.5, 0.75, 1.0];
    let jobs = 64.0;
    let area_big = area.vcore_mm2(big_core().slices, big_core().l2_banks);
    let area_small = area.vcore_mm2(small_core().slices, small_core().l2_banks);
    // Budget between the all-small and all-big extremes: every job can get
    // a small core with ~30% big-core headroom, so the machine-count vs
    // per-machine-performance trade is live across the whole ratio sweep.
    let total_area = jobs * (0.30 * area_big + 0.90 * area_small);
    let perf = |b: Benchmark, s: VCoreShape| suite.surface(b).perf(s);
    let mut points = Vec::new();
    for &af in &app_fracs {
        let mut row = Vec::new();
        for &bf in &big_fracs {
            let n_big = bf * total_area / area_big;
            let n_small = (1.0 - bf) * total_area / area_small;
            let jobs_a = af * jobs;
            let jobs_b = (1.0 - af) * jobs;
            let throughput = schedule(perf, app_a, app_b, jobs_a, jobs_b, n_big, n_small);
            row.push(MixPoint {
                big_area_frac: bf,
                app_a_frac: af,
                throughput_per_area: throughput / total_area,
            });
        }
        points.push(row);
    }
    DatacenterStudy {
        app_a,
        app_b,
        big_fracs,
        app_fracs,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surface::{ExperimentSpec, PerfSurface};

    fn synthetic_suite() -> SuiteSurfaces {
        // hmmer-like: indifferent to size (slightly worse on big per-core
        // area). gobmk-like: much faster on big cores.
        let hmmer = PerfSurface::from_fn("hmmer", |s| 1.0 - 0.02 * s.slices as f64);
        let gobmk = PerfSurface::from_fn("gobmk", |s| {
            0.4 + 0.3 * s.slices.min(3) as f64 + 0.05 * s.l2_banks.min(4) as f64
        });
        SuiteSurfaces::from_parts(
            ExperimentSpec::quick(),
            [(Benchmark::Hmmer, hmmer), (Benchmark::Gobmk, gobmk)]
                .into_iter()
                .collect(),
        )
    }

    #[test]
    fn paper_core_shapes() {
        assert_eq!(big_core().slices, 3);
        assert_eq!(big_core().l2_kb(), 256);
        assert_eq!(small_core().slices, 1);
        assert_eq!(small_core().l2_kb(), 64);
    }

    #[test]
    fn optimal_ratio_moves_with_mix() {
        let suite = synthetic_suite();
        let study = run_study(
            &suite,
            Benchmark::Hmmer,
            Benchmark::Gobmk,
            &AreaModel::paper(),
        );
        assert!(study.no_single_ratio_is_optimal());
        let ratios = study.optimal_ratio_per_mix();
        // All-hmmer wants no big cores; all-gobmk wants many.
        let all_hmmer = ratios.iter().find(|(a, _)| *a == 1.0).unwrap().1;
        let all_gobmk = ratios.iter().find(|(a, _)| *a == 0.0).unwrap().1;
        assert!(all_hmmer < all_gobmk);
    }

    #[test]
    fn schedule_prefers_comparative_advantage() {
        // app A: big 2.0 / small 1.0; app B: big 1.1 / small 1.0.
        let perf = |b: Benchmark, s: VCoreShape| match (b, s.slices) {
            (Benchmark::Hmmer, 3) => 2.0,
            (Benchmark::Hmmer, _) => 1.0,
            (Benchmark::Gobmk, 3) => 1.1,
            _ => 1.0,
        };
        let total = schedule(perf, Benchmark::Hmmer, Benchmark::Gobmk, 1.0, 1.0, 1.0, 1.0);
        // A on big (2.0) + B on small (1.0).
        assert!((total - 3.0).abs() < 1e-12);
    }

    #[test]
    fn grid_dimensions_match() {
        let suite = synthetic_suite();
        let study = run_study(
            &suite,
            Benchmark::Hmmer,
            Benchmark::Gobmk,
            &AreaModel::paper(),
        );
        assert_eq!(study.points.len(), study.app_fracs.len());
        assert!(study
            .points
            .iter()
            .all(|row| row.len() == study.big_fracs.len()));
    }
}
