//! Configuration optimization: budget-constrained utility maximization
//! (§5.6) and the performance-per-area metrics of Table 4.

use crate::market::Market;
use crate::surface::PerfSurface;
use crate::utility::UtilityFn;
use sharing_area::AreaModel;
use sharing_core::VCoreShape;

/// A chosen configuration with its score.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Chosen {
    /// The winning VCore shape.
    pub shape: VCoreShape,
    /// The objective value at that shape (utility, or `perf^k/area`).
    pub value: f64,
    /// The measured performance at that shape.
    pub perf: f64,
}

/// Maximizes `U = v · P(c, s)^k` with `v = B / (C_s·s + C_c·c)` over the
/// swept grid (the customer's decision problem of §5.6).
///
/// # Panics
///
/// Panics if the surface is empty or the budget is not positive/finite.
#[must_use]
pub fn best_utility(
    surface: &PerfSurface,
    utility: UtilityFn,
    market: &Market,
    budget: f64,
) -> Chosen {
    assert!(
        budget > 0.0 && budget.is_finite(),
        "budget must be positive and finite"
    );
    surface
        .iter()
        .map(|(shape, perf)| {
            let v = market.affordable_cores(shape, budget);
            Chosen {
                shape,
                value: utility.evaluate(perf, v),
                perf,
            }
        })
        .max_by(|a, b| a.value.total_cmp(&b.value))
        .expect("surfaces are non-empty")
}

/// Evaluates a *given* shape under a utility/market/budget (for baseline
/// comparisons where the configuration is fixed).
#[must_use]
pub fn utility_at(
    surface: &PerfSurface,
    shape: VCoreShape,
    utility: UtilityFn,
    market: &Market,
    budget: f64,
) -> f64 {
    let v = market.affordable_cores(shape, budget);
    utility.evaluate(surface.perf(shape), v)
}

/// Maximizes `P(c, s)^k / area` over the grid — Table 4's
/// `performance/area`, `performance²/area` and `performance³/area`
/// metrics (`k` = 1, 2, 3).
///
/// # Panics
///
/// Panics if `k == 0`.
#[must_use]
pub fn best_metric(surface: &PerfSurface, k: u32, area: &AreaModel) -> Chosen {
    assert!(k > 0, "metric exponent must be positive");
    surface
        .iter()
        .map(|(shape, perf)| Chosen {
            shape,
            value: perf.powi(k as i32) / area.vcore_mm2(shape.slices, shape.l2_banks),
            perf,
        })
        .max_by(|a, b| a.value.total_cmp(&b.value))
        .expect("surfaces are non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Perf grows with slices with diminishing returns, and with cache up
    /// to a knee.
    fn synthetic() -> PerfSurface {
        PerfSurface::from_fn("syn", |s| {
            let slice_part = 2.0 * (1.0 - 0.6f64.powi(s.slices as i32));
            let cache_part = 1.0 - 0.8f64.powi(1 + s.l2_banks.min(16) as i32);
            slice_part * (0.5 + cache_part)
        })
    }

    #[test]
    fn throughput_buyers_pick_small_cores() {
        let s = synthetic();
        let t = best_utility(&s, UtilityFn::Throughput, &Market::MARKET2, 100.0);
        let l = best_utility(&s, UtilityFn::LatencyCritical, &Market::MARKET2, 100.0);
        assert!(
            t.shape.slices <= l.shape.slices,
            "throughput {} vs latency {}",
            t.shape,
            l.shape
        );
        assert!(t.shape.l2_banks <= l.shape.l2_banks);
    }

    #[test]
    fn utility_at_matches_best_for_winning_shape() {
        let s = synthetic();
        let best = best_utility(&s, UtilityFn::Balanced, &Market::MARKET2, 64.0);
        let direct = utility_at(&s, best.shape, UtilityFn::Balanced, &Market::MARKET2, 64.0);
        assert!((best.value - direct).abs() < 1e-12);
        // No other shape beats it.
        for (shape, _) in s.iter() {
            assert!(
                utility_at(&s, shape, UtilityFn::Balanced, &Market::MARKET2, 64.0)
                    <= best.value + 1e-12
            );
        }
    }

    #[test]
    fn expensive_slices_push_toward_cache() {
        let s = synthetic();
        let m1 = best_utility(&s, UtilityFn::Balanced, &Market::MARKET1, 100.0);
        let m3 = best_utility(&s, UtilityFn::Balanced, &Market::MARKET3, 100.0);
        // When slices cost 4x, buy no more slices than when cache costs 4x.
        assert!(m1.shape.slices <= m3.shape.slices);
    }

    #[test]
    fn metric_exponent_shifts_optimum_upward() {
        let s = synthetic();
        let area = AreaModel::paper();
        let k1 = best_metric(&s, 1, &area);
        let k3 = best_metric(&s, 3, &area);
        assert!(k3.shape.slices >= k1.shape.slices);
        assert!(k3.perf >= k1.perf);
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_budget_rejected() {
        let s = synthetic();
        let _ = best_utility(&s, UtilityFn::Throughput, &Market::MARKET2, 0.0);
    }

    #[test]
    #[should_panic(expected = "exponent must be positive")]
    fn zero_metric_exponent_rejected() {
        let _ = best_metric(&synthetic(), 0, &AreaModel::paper());
    }
}
