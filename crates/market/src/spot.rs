//! Spot-price dynamics (paper §1/§2.1).
//!
//! "This dynamic nature enables the Cloud provider to price sub-core
//! resources dynamically and based on instantaneous market demand" — the
//! sub-core analogue of EC2's Spot Pricing, which §2.1 cites as prior art.
//! [`SpotMarket`] simulates a sequence of market periods: customers arrive
//! and depart (seeded, deterministic), each period's prices come from
//! clearing the [`crate::auction::Auction`] over the current tenant
//! population, and the result is a per-resource price time series the
//! provider (or a customer's §4 meta-program) can study.

use crate::auction::{Auction, Bidder, Clearing};
use crate::surface::PerfSurface;
use crate::utility::ALL_UTILITIES;
use rand_like::SplitMix;

/// A tiny deterministic PRNG so this module does not drag `rand` into the
/// public API (the sequence is part of the experiment's reproducibility).
mod rand_like {
    /// SplitMix64.
    #[derive(Clone, Debug)]
    pub struct SplitMix(u64);

    impl SplitMix {
        pub fn new(seed: u64) -> Self {
            SplitMix(seed)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn chance(&mut self, p: f64) -> bool {
            (self.next_u64() as f64 / u64::MAX as f64) < p
        }

        pub fn pick(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// One period's market state.
#[derive(Clone, Debug)]
pub struct SpotTick {
    /// Period index.
    pub period: usize,
    /// Tenants present this period.
    pub tenants: usize,
    /// Clearing price per Slice.
    pub slice_price: f64,
    /// Clearing price per 64 KB bank.
    pub bank_price: f64,
    /// Total delivered utility this period.
    pub welfare: f64,
}

/// Configuration of the demand process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DemandProcess {
    /// Probability a new customer arrives each period.
    pub arrival_p: f64,
    /// Probability each resident customer departs each period.
    pub departure_p: f64,
    /// Budget of every arriving customer.
    pub budget: f64,
}

impl Default for DemandProcess {
    fn default() -> Self {
        DemandProcess {
            arrival_p: 0.7,
            departure_p: 0.15,
            budget: 50.0,
        }
    }
}

/// The spot-market simulator.
pub struct SpotMarket {
    supply_slices: f64,
    supply_banks: f64,
    /// The workload population customers draw from: `(name, surface)`.
    catalog: Vec<(String, PerfSurface)>,
    demand: DemandProcess,
}

impl SpotMarket {
    /// Creates a spot market over a chip's resources with a workload
    /// catalog customers draw from.
    ///
    /// # Panics
    ///
    /// Panics if the catalog is empty or supplies are not positive.
    #[must_use]
    pub fn new(
        supply_slices: f64,
        supply_banks: f64,
        catalog: Vec<(String, PerfSurface)>,
        demand: DemandProcess,
    ) -> Self {
        assert!(!catalog.is_empty(), "catalog must not be empty");
        assert!(supply_slices > 0.0 && supply_banks > 0.0);
        SpotMarket {
            supply_slices,
            supply_banks,
            catalog,
            demand,
        }
    }

    /// Runs `periods` market periods with the given seed; returns the
    /// price/welfare time series. Fully deterministic for a given seed.
    #[must_use]
    pub fn run(&self, periods: usize, seed: u64) -> Vec<SpotTick> {
        let mut rng = SplitMix::new(seed);
        let mut residents: Vec<Bidder> = Vec::new();
        let mut next_id = 0usize;
        let mut out = Vec::with_capacity(periods);
        for period in 0..periods {
            // Departures, then arrivals.
            let mut kept = Vec::with_capacity(residents.len());
            for b in residents {
                if !rng.chance(self.demand.departure_p) {
                    kept.push(b);
                }
            }
            residents = kept;
            if rng.chance(self.demand.arrival_p) {
                let (wl_name, surface) = &self.catalog[rng.pick(self.catalog.len())];
                let utility = ALL_UTILITIES[rng.pick(ALL_UTILITIES.len())];
                residents.push(Bidder {
                    name: format!("cust{next_id}-{wl_name}-{utility}"),
                    surface: surface.clone(),
                    utility,
                    budget: self.demand.budget,
                });
                next_id += 1;
            }
            let tick = if residents.is_empty() {
                SpotTick {
                    period,
                    tenants: 0,
                    // No demand: prices fall to the floor.
                    slice_price: 0.0,
                    bank_price: 0.0,
                    welfare: 0.0,
                }
            } else {
                let mut auction = Auction::new(self.supply_slices, self.supply_banks);
                for b in &residents {
                    auction.add_bidder(b.clone());
                }
                let clearing: Clearing = auction.clear(60, 0.05);
                SpotTick {
                    period,
                    tenants: residents.len(),
                    slice_price: clearing.slice_price,
                    bank_price: clearing.bank_price,
                    welfare: clearing.total_utility(),
                }
            };
            out.push(tick);
        }
        out
    }
}

/// Summary statistics over a price series.
#[must_use]
pub fn price_summary(ticks: &[SpotTick]) -> (f64, f64, f64) {
    let busy: Vec<&SpotTick> = ticks.iter().filter(|t| t.tenants > 0).collect();
    if busy.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let prices: Vec<f64> = busy.iter().map(|t| t.slice_price).collect();
    let min = prices.iter().copied().fold(f64::INFINITY, f64::min);
    let max = prices.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mean = prices.iter().sum::<f64>() / prices.len() as f64;
    (min, mean, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Vec<(String, PerfSurface)> {
        vec![
            (
                "compute".to_string(),
                PerfSurface::from_fn("compute", |s| (1.0 + s.slices as f64).ln() * 2.0),
            ),
            (
                "cachey".to_string(),
                PerfSurface::from_fn("cachey", |s| 1.0 + (1.0 + s.l2_banks as f64).ln() / 2.0),
            ),
        ]
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let m = SpotMarket::new(64.0, 64.0, catalog(), DemandProcess::default());
        let a = m.run(30, 7);
        let b = m.run(30, 7);
        assert_eq!(a.len(), 30);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tenants, y.tenants);
            assert_eq!(x.slice_price.to_bits(), y.slice_price.to_bits());
        }
        let c = m.run(30, 8);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.tenants != y.tenants),
            "different seeds should differ"
        );
    }

    #[test]
    fn prices_track_population_pressure() {
        let mk = |arrival: f64| {
            let m = SpotMarket::new(
                24.0,
                24.0,
                catalog(),
                DemandProcess {
                    arrival_p: arrival,
                    departure_p: 0.05,
                    budget: 50.0,
                },
            );
            price_summary(&m.run(60, 42)).1
        };
        let quiet = mk(0.15);
        let crowded = mk(0.95);
        assert!(
            crowded > quiet,
            "more demand should raise mean prices: {crowded} vs {quiet}"
        );
    }

    #[test]
    fn empty_periods_have_floor_prices() {
        let m = SpotMarket::new(
            64.0,
            64.0,
            catalog(),
            DemandProcess {
                arrival_p: 0.0,
                departure_p: 1.0,
                budget: 50.0,
            },
        );
        let ticks = m.run(5, 1);
        assert!(ticks.iter().all(|t| t.tenants == 0 && t.slice_price == 0.0));
        assert_eq!(price_summary(&ticks), (0.0, 0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "catalog must not be empty")]
    fn empty_catalog_rejected() {
        let _ = SpotMarket::new(1.0, 1.0, Vec::new(), DemandProcess::default());
    }
}
