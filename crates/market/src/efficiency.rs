//! Market-efficiency studies (paper §5.8, Figures 15 and 16).
//!
//! The paper restricts these studies to Market 2 (prices = area) and asks:
//! how much total utility does the reconfigurable Sharing Architecture
//! deliver compared to
//!
//! 1. the **best static fixed architecture** — one `(cache, slices)` shape
//!    chosen across all benchmarks and all three utility functions
//!    (Figure 15, gains up to ≈5×), and
//! 2. a **heterogeneous-style** baseline — for each utility function, the
//!    shape optimal across the benchmark suite for that function
//!    (Figure 16, gains over 3×)?
//!
//! Each study enumerates pairwise mixes of (benchmark, utility) customers
//! and reports `(U₁(sharing)+U₂(sharing)) / (U₁(baseline)+U₂(baseline))`.

use crate::market::Market;
use crate::optimize::{best_utility, utility_at};
use crate::surface::SuiteSurfaces;
use crate::utility::{UtilityFn, ALL_UTILITIES};
use sharing_core::VCoreShape;
use sharing_trace::Benchmark;

/// The utility gain of one pairwise customer mix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PairGain {
    /// First customer.
    pub a: (Benchmark, UtilityFn),
    /// Second customer.
    pub b: (Benchmark, UtilityFn),
    /// `(U_a + U_b)` on the Sharing Architecture (per-customer optimum).
    pub sharing: f64,
    /// `(U_a + U_b)` on the baseline configuration(s).
    pub baseline: f64,
}

impl PairGain {
    /// The utility gain (≥ 1 means the Sharing Architecture wins).
    #[must_use]
    pub fn gain(&self) -> f64 {
        self.sharing / self.baseline
    }
}

/// A completed efficiency study.
#[derive(Clone, Debug)]
pub struct EfficiencyStudy {
    /// The baseline's label ("static fixed" or "heterogeneous").
    pub baseline_name: String,
    /// The baseline shape(s): one per utility function for the
    /// heterogeneous study, a single entry for the fixed study.
    pub baseline_shapes: Vec<(UtilityFn, VCoreShape)>,
    /// Every pairwise permutation's gain.
    pub pairs: Vec<PairGain>,
}

impl EfficiencyStudy {
    /// The maximum gain across permutations (the paper's headline "up to
    /// 5×" / "over 3×").
    ///
    /// # Panics
    ///
    /// Panics if the study is empty.
    #[must_use]
    pub fn max_gain(&self) -> f64 {
        self.pairs
            .iter()
            .map(PairGain::gain)
            .max_by(f64::total_cmp)
            .expect("study has permutations")
    }

    /// Geometric-mean gain across permutations.
    #[must_use]
    pub fn mean_gain(&self) -> f64 {
        let log_sum: f64 = self.pairs.iter().map(|p| p.gain().ln()).sum();
        (log_sum / self.pairs.len() as f64).exp()
    }

    /// Fraction of permutations where the Sharing Architecture strictly
    /// wins.
    #[must_use]
    pub fn win_rate(&self) -> f64 {
        let wins = self.pairs.iter().filter(|p| p.gain() > 1.0).count();
        wins as f64 / self.pairs.len() as f64
    }
}

/// All (benchmark, utility) customer kinds in a suite.
fn customers(suite: &SuiteSurfaces) -> Vec<(Benchmark, UtilityFn)> {
    let mut out = Vec::new();
    for b in suite.benchmarks() {
        for u in ALL_UTILITIES {
            out.push((b, u));
        }
    }
    out
}

/// The single shape maximizing the geometric mean of utility across every
/// (benchmark, utility) customer — the best possible *fixed* multicore for
/// this suite (§5.8's static baseline). Geometric mean, because utilities
/// with different exponents live on incomparable scales.
#[must_use]
pub fn best_fixed_shape(suite: &SuiteSurfaces, market: &Market, budget: f64) -> VCoreShape {
    let custs = customers(suite);
    VCoreShape::sweep_grid()
        .filter(|s| {
            // A fixed design with zero cache would score zero for any
            // benchmark that needs it; still allowed — the GME sorts it out.
            s.slices >= 1
        })
        .max_by(|&x, &y| {
            let score = |shape: VCoreShape| -> f64 {
                custs
                    .iter()
                    .map(|&(b, u)| {
                        utility_at(suite.surface(b), shape, u, market, budget)
                            .max(f64::MIN_POSITIVE)
                            .ln()
                    })
                    .sum()
            };
            score(x).total_cmp(&score(y))
        })
        .expect("sweep grid is non-empty")
}

/// For each utility function, the shape maximizing the geometric mean of
/// that utility across benchmarks — what a heterogeneous multicore
/// designed around these three customer classes would provision (§5.8's
/// second baseline, after Guevara et al.).
#[must_use]
pub fn best_per_utility_shapes(
    suite: &SuiteSurfaces,
    market: &Market,
    budget: f64,
) -> Vec<(UtilityFn, VCoreShape)> {
    ALL_UTILITIES
        .iter()
        .map(|&u| {
            let shape = VCoreShape::sweep_grid()
                .max_by(|&x, &y| {
                    let score = |shape: VCoreShape| -> f64 {
                        suite
                            .iter()
                            .map(|(_, surf)| {
                                utility_at(surf, shape, u, market, budget)
                                    .max(f64::MIN_POSITIVE)
                                    .ln()
                            })
                            .sum()
                    };
                    score(x).total_cmp(&score(y))
                })
                .expect("sweep grid is non-empty");
            (u, shape)
        })
        .collect()
}

fn pairwise_study(
    suite: &SuiteSurfaces,
    market: &Market,
    budget: f64,
    baseline_name: &str,
    baseline_shapes: Vec<(UtilityFn, VCoreShape)>,
    shape_for: impl Fn(UtilityFn) -> VCoreShape,
) -> EfficiencyStudy {
    let custs = customers(suite);
    let sharing: Vec<f64> = custs
        .iter()
        .map(|&(b, u)| best_utility(suite.surface(b), u, market, budget).value)
        .collect();
    let baseline: Vec<f64> = custs
        .iter()
        .map(|&(b, u)| utility_at(suite.surface(b), shape_for(u), u, market, budget))
        .collect();
    let mut pairs = Vec::new();
    for i in 0..custs.len() {
        for j in i..custs.len() {
            pairs.push(PairGain {
                a: custs[i],
                b: custs[j],
                sharing: sharing[i] + sharing[j],
                baseline: (baseline[i] + baseline[j]).max(f64::MIN_POSITIVE),
            });
        }
    }
    EfficiencyStudy {
        baseline_name: baseline_name.to_string(),
        baseline_shapes,
        pairs,
    }
}

/// Figure 15: Sharing Architecture vs the best static fixed architecture.
#[must_use]
pub fn vs_static_fixed(suite: &SuiteSurfaces, market: &Market, budget: f64) -> EfficiencyStudy {
    let fixed = best_fixed_shape(suite, market, budget);
    pairwise_study(
        suite,
        market,
        budget,
        "static fixed",
        vec![
            (UtilityFn::Throughput, fixed),
            (UtilityFn::Balanced, fixed),
            (UtilityFn::LatencyCritical, fixed),
        ],
        |_| fixed,
    )
}

/// Figure 16: Sharing Architecture vs per-utility-optimal (heterogeneous)
/// configurations.
#[must_use]
pub fn vs_heterogeneous(suite: &SuiteSurfaces, market: &Market, budget: f64) -> EfficiencyStudy {
    let shapes = best_per_utility_shapes(suite, market, budget);
    let lookup = shapes.clone();
    pairwise_study(suite, market, budget, "heterogeneous", shapes, move |u| {
        lookup
            .iter()
            .find(|(uu, _)| *uu == u)
            .expect("every utility has a baseline shape")
            .1
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surface::{ExperimentSpec, PerfSurface};

    /// A synthetic suite with two very different benchmarks: one loves
    /// slices, one loves cache.
    fn synthetic_suite() -> SuiteSurfaces {
        let slices_lover = PerfSurface::from_fn("astar", |s| {
            (s.slices as f64).sqrt() * (1.0 + 0.01 * s.l2_banks as f64)
        });
        let cache_lover = PerfSurface::from_fn("bzip", |s| {
            (1.0 + (1.0 + s.l2_banks as f64).ln()) * (1.0 + 0.05 * s.slices as f64)
        });
        SuiteSurfaces::from_parts(
            ExperimentSpec::quick(),
            [
                (Benchmark::Astar, slices_lover),
                (Benchmark::Bzip, cache_lover),
            ]
            .into_iter()
            .collect(),
        )
    }

    #[test]
    fn sharing_never_loses_to_fixed() {
        let suite = synthetic_suite();
        let study = vs_static_fixed(&suite, &Market::MARKET2, 100.0);
        // Per-customer optimum dominates any single shape.
        for p in &study.pairs {
            assert!(
                p.gain() >= 1.0 - 1e-12,
                "sharing lost: {:?} gain {}",
                p,
                p.gain()
            );
        }
        assert!(study.max_gain() >= study.mean_gain());
    }

    #[test]
    fn heterogeneous_baseline_at_least_as_good_as_fixed() {
        let suite = synthetic_suite();
        let fixed = vs_static_fixed(&suite, &Market::MARKET2, 100.0);
        let hetero = vs_heterogeneous(&suite, &Market::MARKET2, 100.0);
        // Three shapes can only beat one shape, so gains shrink.
        assert!(hetero.mean_gain() <= fixed.mean_gain() + 1e-9);
    }

    #[test]
    fn pair_count_is_upper_triangle() {
        let suite = synthetic_suite();
        let study = vs_static_fixed(&suite, &Market::MARKET2, 100.0);
        let n = 2 * ALL_UTILITIES.len(); // 2 benchmarks × 3 utilities
        assert_eq!(study.pairs.len(), n * (n + 1) / 2);
    }

    #[test]
    fn per_utility_shapes_cover_all_utilities() {
        let suite = synthetic_suite();
        let shapes = best_per_utility_shapes(&suite, &Market::MARKET2, 100.0);
        assert_eq!(shapes.len(), 3);
        let mut utils: Vec<_> = shapes.iter().map(|(u, _)| *u).collect();
        utils.sort();
        utils.dedup();
        assert_eq!(utils.len(), 3);
    }

    #[test]
    fn win_rate_is_a_fraction() {
        let suite = synthetic_suite();
        let study = vs_static_fixed(&suite, &Market::MARKET2, 100.0);
        let w = study.win_rate();
        assert!((0.0..=1.0).contains(&w));
    }

    #[test]
    fn synthetic_suite_deserializes() {
        let suite = synthetic_suite();
        assert_eq!(suite.benchmarks().len(), 2);
    }
}
