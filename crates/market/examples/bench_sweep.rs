//! Timed cold and warm full-suite sweeps, for the perf trajectory.
//!
//! `scripts/bench_sweep.sh` wraps this and writes `BENCH_sweep.json`.
//! Seven phases, the first six over the full 15-benchmark × 72-shape
//! grid:
//!
//! 1. **regen baseline** — sequential, a fresh trace cache per point, so
//!    every point regenerates its trace (the pre-trace-cache behaviour);
//! 2. **cold sequential** — one shared fresh trace cache, one worker;
//! 3. **cold parallel** — one shared fresh trace cache, `--jobs` workers;
//! 4. **warm parallel** — the same cache again, so every trace lookup
//!    hits;
//! 5. **legacy engine** — the warm cache again, polled (legacy) engine,
//!    one worker — the engine A/B baseline;
//! 6. **event engine** — same warm cache, event-driven engine, one
//!    worker. Phases 5 and 6 must serialize byte-identically (the
//!    engines' contract), and their ratio is the `event_driven`
//!    speedup reported in the JSON;
//! 7. **sharded VM** — the PARSEC benchmarks as 4-thread VMs, run
//!    single-worker and then with the sharded engine's `--jobs` worker
//!    shards (DESIGN.md §14). Both must serialize byte-identically —
//!    the worker count is unobservable — and their wall-clock ratio is
//!    the `sharded` intra-run speedup reported in the JSON (expect >1
//!    only on multi-core machines).
//!
//! The sequential and parallel builds must serialize byte-identically
//! (asserted here), which is the determinism contract of DESIGN.md §9.

use sharing_core::{EngineKind, SimConfig, VCoreShape, VmSimulator};
use sharing_json::{Json, ToJson};
use sharing_market::{ExperimentSpec, SuiteSurfaces};
use sharing_trace::{TraceCache, TraceSpec, ALL_BENCHMARKS, PARSEC_BENCHMARKS};
use std::time::Instant;

fn main() {
    let mut spec = ExperimentSpec::standard();
    let mut jobs = sharing_core::par::resolve_jobs(None);
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match a.as_str() {
            "--len" => spec.trace_len = val("--len").parse().expect("--len N"),
            "--jobs" => jobs = val("--jobs").parse::<usize>().expect("--jobs N").max(1),
            "--out" => out = Some(val("--out")),
            other => panic!("unknown flag `{other}` (known: --len --jobs --out)"),
        }
    }
    let points = 72 * ALL_BENCHMARKS.len();
    eprintln!(
        "[bench_sweep: {} benchmarks x 72 shapes, len {}, {jobs} jobs]",
        ALL_BENCHMARKS.len(),
        spec.trace_len
    );

    let t = Instant::now();
    for &b in &ALL_BENCHMARKS {
        for shape in VCoreShape::sweep_grid() {
            let fresh = TraceCache::new();
            let _ = SuiteSurfaces::measure_with(b, shape, &spec, &fresh);
        }
    }
    let regen_seq_secs = t.elapsed().as_secs_f64();
    eprintln!("[regen baseline:  {regen_seq_secs:.2}s]");

    let seq_cache = TraceCache::new();
    let t = Instant::now();
    let seq = SuiteSurfaces::build_subset_with(spec, &ALL_BENCHMARKS, &seq_cache, 1);
    let cold_seq_secs = t.elapsed().as_secs_f64();
    eprintln!("[cold sequential: {cold_seq_secs:.2}s]");

    let par_cache = TraceCache::new();
    let t = Instant::now();
    let par = SuiteSurfaces::build_subset_with(spec, &ALL_BENCHMARKS, &par_cache, jobs);
    let cold_par_secs = t.elapsed().as_secs_f64();
    eprintln!("[cold parallel:   {cold_par_secs:.2}s]");
    assert_eq!(
        sharing_json::to_string(&seq),
        sharing_json::to_string(&par),
        "parallel suite sweep must serialize identically to sequential"
    );
    let (hits, misses, generations) = (
        par_cache.hits(),
        par_cache.misses(),
        par_cache.generations(),
    );

    let t = Instant::now();
    let warm = SuiteSurfaces::build_subset_with(spec, &ALL_BENCHMARKS, &par_cache, jobs);
    let warm_par_secs = t.elapsed().as_secs_f64();
    eprintln!("[warm parallel:   {warm_par_secs:.2}s]");
    assert_eq!(
        sharing_json::to_string(&par),
        sharing_json::to_string(&warm),
        "warm rebuild must reproduce the cold build"
    );

    // Engine A/B on the warm cache: identical work, identical traces,
    // only the engine differs — so the wall-clock ratio is the
    // event-driven speedup, and the surfaces must match byte-for-byte.
    let t = Instant::now();
    let legacy = SuiteSurfaces::build_subset_with_engine(
        spec,
        &ALL_BENCHMARKS,
        &par_cache,
        1,
        EngineKind::Legacy,
    );
    let legacy_secs = t.elapsed().as_secs_f64();
    eprintln!("[legacy engine:   {legacy_secs:.2}s]");

    let t = Instant::now();
    let event = SuiteSurfaces::build_subset_with_engine(
        spec,
        &ALL_BENCHMARKS,
        &par_cache,
        1,
        EngineKind::EventDriven,
    );
    let event_secs = t.elapsed().as_secs_f64();
    eprintln!("[event engine:    {event_secs:.2}s]");
    assert_eq!(
        sharing_json::to_string(&legacy),
        sharing_json::to_string(&event),
        "event-driven engine must serialize byte-identically to the legacy engine"
    );
    assert_eq!(
        sharing_json::to_string(&par),
        sharing_json::to_string(&event),
        "default-engine sweep must match the explicit event-driven sweep"
    );

    // Sharded VM A/B: the PARSEC set as 4-thread VMs over a shared L2,
    // single worker vs `jobs` worker shards. Identical bytes (asserted —
    // the barrier protocol makes the worker count unobservable), so the
    // wall-clock ratio is the intra-run parallel speedup.
    const VM_REPS: usize = 8;
    let vm_cfg = SimConfig::with_shape(2, 4).expect("valid VM shape");
    let vm_spec = TraceSpec::new(spec.trace_len, 2014);
    let vm_workloads: Vec<_> = PARSEC_BENCHMARKS
        .iter()
        .map(|&b| b.generate_threaded(&vm_spec))
        .collect();
    let run_vms = |workers: usize| {
        let vm = VmSimulator::new(vm_cfg)
            .expect("valid VM config")
            .with_engine(EngineKind::Sharded)
            .with_threads(workers);
        let t = Instant::now();
        let mut results = Vec::new();
        for _ in 0..VM_REPS {
            results = vm_workloads.iter().map(|w| vm.run(w)).collect();
        }
        (sharing_json::to_string(&results), t.elapsed().as_secs_f64())
    };
    let (vm_single_bytes, vm_single_secs) = run_vms(1);
    eprintln!("[sharded 1 worker:  {vm_single_secs:.2}s]");
    let (vm_sharded_bytes, vm_sharded_secs) = run_vms(jobs);
    eprintln!("[sharded {jobs} workers: {vm_sharded_secs:.2}s]");
    assert_eq!(
        vm_single_bytes, vm_sharded_bytes,
        "sharded VM results must not depend on the worker count"
    );
    let vm_cycles: f64 = {
        let parsed = Json::parse(&vm_single_bytes).expect("own serialization parses");
        let runs = parsed.as_arr().expect("array of results");
        runs.iter()
            .map(|r| r.get("cycles").and_then(Json::as_int).unwrap_or(0) as f64)
            .sum::<f64>()
            * VM_REPS as f64
    };

    // Simulated cycles, reconstructed from the surfaces: each point
    // committed `trace_len` instructions per thread at the measured
    // per-thread IPC, so cycles ~= len / perf (exact for single-thread
    // benchmarks, per-VCore-normalized for PARSEC).
    let est_cycles: f64 = par
        .iter()
        .flat_map(|(_, s)| s.iter())
        .map(|(_, perf)| spec.trace_len as f64 / perf.max(1e-9))
        .sum();

    let report = Json::obj(vec![
        ("benchmarks", Json::Int(ALL_BENCHMARKS.len() as i128)),
        ("points", Json::Int(points as i128)),
        ("trace_len", Json::Int(spec.trace_len as i128)),
        ("jobs", Json::Int(jobs as i128)),
        ("regen_sequential_secs", Json::Float(regen_seq_secs)),
        ("cold_sequential_secs", Json::Float(cold_seq_secs)),
        ("cold_parallel_secs", Json::Float(cold_par_secs)),
        ("cold_speedup", Json::Float(cold_seq_secs / cold_par_secs)),
        (
            "improvement_vs_regen_baseline",
            Json::Float(regen_seq_secs / cold_par_secs),
        ),
        ("warm_parallel_secs", Json::Float(warm_par_secs)),
        ("simulated_cycles", Json::Float(est_cycles)),
        (
            "cycles_per_sec_cold_parallel",
            Json::Float(est_cycles / cold_par_secs),
        ),
        (
            "cycles_per_sec_cold_sequential",
            Json::Float(est_cycles / cold_seq_secs),
        ),
        (
            "event_driven",
            Json::obj(vec![
                ("sequential_secs", Json::Float(event_secs)),
                ("cycles_per_sec", Json::Float(est_cycles / event_secs)),
                ("legacy_sequential_secs", Json::Float(legacy_secs)),
                (
                    "legacy_cycles_per_sec",
                    Json::Float(est_cycles / legacy_secs),
                ),
                ("speedup_vs_legacy", Json::Float(legacy_secs / event_secs)),
            ]),
        ),
        (
            "sharded",
            Json::obj(vec![
                ("sharded_threads", Json::Int(jobs as i128)),
                ("vm_single_secs", Json::Float(vm_single_secs)),
                ("vm_sharded_secs", Json::Float(vm_sharded_secs)),
                (
                    "vm_cycles_per_sec_single",
                    Json::Float(vm_cycles / vm_single_secs),
                ),
                (
                    "vm_cycles_per_sec_sharded",
                    Json::Float(vm_cycles / vm_sharded_secs),
                ),
                (
                    "speedup_vs_single_worker",
                    Json::Float(vm_single_secs / vm_sharded_secs),
                ),
            ]),
        ),
        (
            "trace_cache",
            Json::obj(vec![
                ("hits", hits.to_json()),
                ("misses", misses.to_json()),
                ("generations", generations.to_json()),
            ]),
        ),
    ]);
    let text = sharing_json::to_string_pretty(&report);
    match out {
        Some(path) => {
            std::fs::write(&path, format!("{text}\n")).expect("write report");
            eprintln!("[wrote {path}]");
        }
        None => println!("{text}"),
    }
}
