//! Dynamic instruction records.

use crate::regs::ArchReg;
use std::fmt;

/// Access width of a memory operation, in bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum MemSize {
    /// 1-byte access.
    B1,
    /// 2-byte access.
    B2,
    /// 4-byte access.
    B4,
    /// 8-byte access.
    #[default]
    B8,
}

impl MemSize {
    /// The width in bytes.
    #[must_use]
    pub fn bytes(self) -> u64 {
        match self {
            MemSize::B1 => 1,
            MemSize::B2 => 2,
            MemSize::B4 => 4,
            MemSize::B8 => 8,
        }
    }
}

/// The operation class of a dynamic instruction.
///
/// This is the full set of behaviours the Sharing Architecture pipeline
/// distinguishes: which issue window the instruction waits in (ALU vs
/// load/store, §3.3 of the paper), its execution latency, whether it
/// traverses the load/store sorting network, and whether the front end must
/// predict it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InstKind {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Multi-cycle integer multiply.
    IntMul,
    /// Multi-cycle integer divide.
    IntDiv,
    /// A load from memory. `addr` is the committed effective address.
    Load {
        /// Committed effective address.
        addr: u64,
        /// Access width.
        size: MemSize,
    },
    /// A store to memory. `addr` is the committed effective address.
    Store {
        /// Committed effective address.
        addr: u64,
        /// Access width.
        size: MemSize,
    },
    /// Conditional branch with its committed outcome and target.
    Branch {
        /// Whether the branch was taken on the committed path.
        taken: bool,
        /// Branch target (meaningful whether or not taken; the fall-through
        /// is `pc + 4`).
        target: u64,
    },
    /// Unconditional direct jump (always taken, statically known target).
    Jump {
        /// Jump target.
        target: u64,
    },
    /// Unconditional indirect jump (register target; needs the BTB).
    JumpIndirect {
        /// Committed target.
        target: u64,
    },
    /// No-operation (still occupies fetch/ROB slots).
    Nop,
}

impl InstKind {
    /// Execution latency in cycles on the functional unit, excluding any
    /// memory-system or network time.
    #[must_use]
    pub fn exec_latency(self) -> u32 {
        match self {
            InstKind::IntAlu | InstKind::Nop => 1,
            InstKind::IntMul => 3,
            InstKind::IntDiv => 12,
            // Address generation; cache access time is added by the memory
            // system.
            InstKind::Load { .. } | InstKind::Store { .. } => 1,
            InstKind::Branch { .. } | InstKind::Jump { .. } | InstKind::JumpIndirect { .. } => 1,
        }
    }

    /// Whether this instruction occupies the load/store pipeline (and the
    /// distributed LSQ) rather than the ALU pipeline.
    #[must_use]
    pub fn is_mem(self) -> bool {
        matches!(self, InstKind::Load { .. } | InstKind::Store { .. })
    }

    /// Whether this is a load.
    #[must_use]
    pub fn is_load(self) -> bool {
        matches!(self, InstKind::Load { .. })
    }

    /// Whether this is a store.
    #[must_use]
    pub fn is_store(self) -> bool {
        matches!(self, InstKind::Store { .. })
    }

    /// Whether the front end must predict this instruction's direction
    /// and/or target.
    #[must_use]
    pub fn is_control(self) -> bool {
        matches!(
            self,
            InstKind::Branch { .. } | InstKind::Jump { .. } | InstKind::JumpIndirect { .. }
        )
    }

    /// The committed effective address of a memory operation, if any.
    #[must_use]
    pub fn mem_addr(self) -> Option<u64> {
        match self {
            InstKind::Load { addr, .. } | InstKind::Store { addr, .. } => Some(addr),
            _ => None,
        }
    }

    /// The committed control-flow target, if this is a control instruction.
    #[must_use]
    pub fn control_target(self) -> Option<u64> {
        match self {
            InstKind::Branch { target, .. }
            | InstKind::Jump { target }
            | InstKind::JumpIndirect { target } => Some(target),
            _ => None,
        }
    }
}

/// Source operands of an instruction (at most two, like the paper's
/// two-operand Slice datapath).
pub type SrcRegs = [Option<ArchReg>; 2];

/// A committed-path dynamic instruction, as delivered by a trace.
///
/// This mirrors a GEM5 trace record: program counter, operation class with
/// committed effective address / branch outcome, and architectural operand
/// names. The out-of-order machinery (renaming, speculation, replay) is the
/// simulator's job; the trace only fixes the committed path.
///
/// # Example
///
/// ```
/// use sharing_isa::{ArchReg, DynInst, InstKind, MemSize};
///
/// let ld = DynInst::load(0x400, ArchReg::new(1), Some(ArchReg::new(2)), 0x8000, MemSize::B8);
/// assert!(ld.kind.is_load());
/// assert_eq!(ld.kind.mem_addr(), Some(0x8000));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DynInst {
    /// Program counter of the instruction.
    pub pc: u64,
    /// Operation class and committed outcome.
    pub kind: InstKind,
    /// Destination architectural register, if the instruction writes one.
    pub dst: Option<ArchReg>,
    /// Source architectural registers (up to two).
    pub srcs: SrcRegs,
}

impl DynInst {
    /// Builds a single-cycle ALU instruction `dst <- op(srcs…)`.
    ///
    /// # Panics
    ///
    /// Panics if more than two source registers are supplied.
    #[must_use]
    pub fn alu(pc: u64, dst: ArchReg, srcs: &[ArchReg]) -> Self {
        Self::with_kind(pc, InstKind::IntAlu, Some(dst), srcs)
    }

    /// Builds a multiply instruction.
    ///
    /// # Panics
    ///
    /// Panics if more than two source registers are supplied.
    #[must_use]
    pub fn mul(pc: u64, dst: ArchReg, srcs: &[ArchReg]) -> Self {
        Self::with_kind(pc, InstKind::IntMul, Some(dst), srcs)
    }

    /// Builds a load `dst <- mem[addr]`, with `base` as the address operand.
    #[must_use]
    pub fn load(pc: u64, dst: ArchReg, base: Option<ArchReg>, addr: u64, size: MemSize) -> Self {
        DynInst {
            pc,
            kind: InstKind::Load { addr, size },
            dst: Some(dst),
            srcs: [base, None],
        }
    }

    /// Builds a store `mem[addr] <- data`, with `base` as the address operand.
    #[must_use]
    pub fn store(pc: u64, data: ArchReg, base: Option<ArchReg>, addr: u64, size: MemSize) -> Self {
        DynInst {
            pc,
            kind: InstKind::Store { addr, size },
            dst: None,
            srcs: [Some(data), base],
        }
    }

    /// Builds a conditional branch testing `cond`.
    #[must_use]
    pub fn branch(pc: u64, cond: ArchReg, taken: bool, target: u64) -> Self {
        DynInst {
            pc,
            kind: InstKind::Branch { taken, target },
            dst: None,
            srcs: [Some(cond), None],
        }
    }

    /// Builds an unconditional direct jump.
    #[must_use]
    pub fn jump(pc: u64, target: u64) -> Self {
        DynInst {
            pc,
            kind: InstKind::Jump { target },
            dst: None,
            srcs: [None, None],
        }
    }

    /// Builds a no-op.
    #[must_use]
    pub fn nop(pc: u64) -> Self {
        DynInst {
            pc,
            kind: InstKind::Nop,
            dst: None,
            srcs: [None, None],
        }
    }

    fn with_kind(pc: u64, kind: InstKind, dst: Option<ArchReg>, srcs: &[ArchReg]) -> Self {
        assert!(srcs.len() <= 2, "at most two source operands supported");
        let mut s: SrcRegs = [None, None];
        for (slot, &r) in s.iter_mut().zip(srcs) {
            *slot = Some(r);
        }
        DynInst {
            pc,
            kind,
            dst,
            srcs: s,
        }
    }

    /// Iterates over the present source registers.
    pub fn src_iter(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.srcs.iter().flatten().copied()
    }

    /// The committed next-PC after this instruction (assuming 4-byte
    /// instruction granularity).
    #[must_use]
    pub fn next_pc(&self) -> u64 {
        match self.kind {
            InstKind::Branch {
                taken: true,
                target,
            }
            | InstKind::Jump { target }
            | InstKind::JumpIndirect { target } => target,
            _ => self.pc.wrapping_add(4),
        }
    }

    /// Shorthand for `self.kind.is_mem()`.
    #[must_use]
    pub fn is_mem(&self) -> bool {
        self.kind.is_mem()
    }

    /// Shorthand for `self.kind.is_control()`.
    #[must_use]
    pub fn is_control(&self) -> bool {
        self.kind.is_control()
    }
}

impl fmt::Display for DynInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}: ", self.pc)?;
        match self.kind {
            InstKind::IntAlu => write!(f, "alu")?,
            InstKind::IntMul => write!(f, "mul")?,
            InstKind::IntDiv => write!(f, "div")?,
            InstKind::Load { addr, .. } => write!(f, "ld [{addr:#x}]")?,
            InstKind::Store { addr, .. } => write!(f, "st [{addr:#x}]")?,
            InstKind::Branch { taken, target } => {
                write!(f, "br{} {target:#x}", if taken { ".t" } else { ".nt" })?
            }
            InstKind::Jump { target } => write!(f, "jmp {target:#x}")?,
            InstKind::JumpIndirect { target } => write!(f, "jmpi {target:#x}")?,
            InstKind::Nop => write!(f, "nop")?,
        }
        if let Some(d) = self.dst {
            write!(f, " -> {d}")?;
        }
        let srcs: Vec<String> = self.src_iter().map(|r| r.to_string()).collect();
        if !srcs.is_empty() {
            write!(f, " <- {}", srcs.join(","))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_latencies_are_positive_and_ordered() {
        assert_eq!(InstKind::IntAlu.exec_latency(), 1);
        assert!(InstKind::IntMul.exec_latency() > InstKind::IntAlu.exec_latency());
        assert!(InstKind::IntDiv.exec_latency() > InstKind::IntMul.exec_latency());
    }

    #[test]
    fn classification_predicates() {
        let ld = InstKind::Load {
            addr: 0x10,
            size: MemSize::B4,
        };
        let st = InstKind::Store {
            addr: 0x10,
            size: MemSize::B4,
        };
        let br = InstKind::Branch {
            taken: true,
            target: 0x40,
        };
        assert!(ld.is_mem() && ld.is_load() && !ld.is_store());
        assert!(st.is_mem() && st.is_store() && !st.is_load());
        assert!(br.is_control() && !br.is_mem());
        assert!(!InstKind::IntAlu.is_mem() && !InstKind::IntAlu.is_control());
    }

    #[test]
    fn next_pc_follows_committed_outcome() {
        let r = ArchReg::new(1);
        assert_eq!(DynInst::branch(0x100, r, true, 0x200).next_pc(), 0x200);
        assert_eq!(DynInst::branch(0x100, r, false, 0x200).next_pc(), 0x104);
        assert_eq!(DynInst::jump(0x100, 0x50).next_pc(), 0x50);
        assert_eq!(DynInst::nop(0x100).next_pc(), 0x104);
    }

    #[test]
    fn builders_populate_operands() {
        let a = DynInst::alu(0, ArchReg::new(5), &[ArchReg::new(1), ArchReg::new(2)]);
        assert_eq!(a.src_iter().count(), 2);
        assert_eq!(a.dst, Some(ArchReg::new(5)));

        let s = DynInst::store(0, ArchReg::new(3), Some(ArchReg::new(4)), 0x80, MemSize::B8);
        assert_eq!(s.dst, None);
        assert_eq!(s.src_iter().count(), 2);
    }

    #[test]
    #[should_panic(expected = "at most two")]
    fn too_many_sources_panics() {
        let rs = [ArchReg::new(1), ArchReg::new(2), ArchReg::new(3)];
        let _ = DynInst::alu(0, ArchReg::new(0), &rs);
    }

    #[test]
    fn display_is_nonempty_and_informative() {
        let i = DynInst::load(
            0x400,
            ArchReg::new(1),
            Some(ArchReg::new(2)),
            0x8000,
            MemSize::B8,
        );
        let s = i.to_string();
        assert!(s.contains("ld"));
        assert!(s.contains("0x8000"));
        assert!(s.contains("r1"));
    }

    #[test]
    fn mem_size_bytes() {
        assert_eq!(MemSize::B1.bytes(), 1);
        assert_eq!(MemSize::B2.bytes(), 2);
        assert_eq!(MemSize::B4.bytes(), 4);
        assert_eq!(MemSize::B8.bytes(), 8);
        assert_eq!(MemSize::default(), MemSize::B8);
    }
}
