//! A tiny assembler for hand-written test programs.
//!
//! The simulator consumes committed-path dynamic instructions; for unit
//! tests, pipeline studies and the `ssim --asm` flow it is handy to write
//! those by hand instead of generating them. One instruction per line:
//!
//! ```text
//! # comments and blank lines are skipped
//! alu   r1, r2, r3        # r1 <- op(r2, r3)
//! mul   r4, r4            # r4 <- op(r4)
//! div   r5, r5
//! ld    r2, [0x1000]      # load, absolute committed address
//! ld    r2, [0x1000], r7  # with an address-base register
//! st    r2, [0x1000]      # store r2
//! br.t  0x40, r1          # conditional branch, taken, testing r1
//! br.nt 0x40, r1          # not taken
//! jmp   0x100
//! nop
//! ```
//!
//! Addresses and targets are the *committed* values, exactly as a trace
//! record carries them. PCs are assigned sequentially from a base (4 bytes
//! per instruction).

use crate::inst::{DynInst, InstKind, MemSize};
use crate::regs::ArchReg;
use std::fmt;

/// An assembly error with its 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<ArchReg, AsmError> {
    let idx = tok
        .strip_prefix('r')
        .and_then(|n| n.parse::<u8>().ok())
        .ok_or_else(|| err(line, format!("expected a register, got `{tok}`")))?;
    ArchReg::try_new(idx).ok_or_else(|| err(line, format!("register `{tok}` out of range")))
}

fn parse_num(tok: &str, line: usize) -> Result<u64, AsmError> {
    let parsed = if let Some(hex) = tok.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        tok.parse()
    };
    parsed.map_err(|_| err(line, format!("expected a number, got `{tok}`")))
}

fn parse_addr(tok: &str, line: usize) -> Result<u64, AsmError> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected [address], got `{tok}`")))?;
    parse_num(inner, line)
}

/// Assembles a program into dynamic instructions, assigning PCs
/// sequentially from `base_pc`.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered.
///
/// # Example
///
/// ```
/// use sharing_isa::asm::assemble;
///
/// let prog = assemble(
///     "alu r1, r1
///      st  r1, [0x40]
///      ld  r2, [0x40]
///      br.nt 0x0, r2",
///     0x1000,
/// )?;
/// assert_eq!(prog.len(), 4);
/// assert_eq!(prog[0].pc, 0x1000);
/// assert!(prog[2].kind.is_load());
/// # Ok::<(), sharing_isa::asm::AsmError>(())
/// ```
pub fn assemble(source: &str, base_pc: u64) -> Result<Vec<DynInst>, AsmError> {
    let mut out = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        let line_no = i + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let pc = base_pc + 4 * out.len() as u64;
        let (mnemonic, rest) = text.split_once(char::is_whitespace).unwrap_or((text, ""));
        let args: Vec<&str> = rest
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        let arity = |want: std::ops::RangeInclusive<usize>| -> Result<(), AsmError> {
            if want.contains(&args.len()) {
                Ok(())
            } else {
                Err(err(
                    line_no,
                    format!("`{mnemonic}` takes {want:?} operands, got {}", args.len()),
                ))
            }
        };
        let inst = match mnemonic {
            "alu" | "mul" | "div" => {
                arity(1..=3)?;
                let dst = parse_reg(args[0], line_no)?;
                let srcs: Vec<ArchReg> = args[1..]
                    .iter()
                    .map(|t| parse_reg(t, line_no))
                    .collect::<Result<_, _>>()?;
                let mut inst = DynInst::alu(pc, dst, &srcs);
                inst.kind = match mnemonic {
                    "alu" => InstKind::IntAlu,
                    "mul" => InstKind::IntMul,
                    _ => InstKind::IntDiv,
                };
                inst
            }
            "ld" => {
                arity(2..=3)?;
                let dst = parse_reg(args[0], line_no)?;
                let addr = parse_addr(args[1], line_no)?;
                let base = args.get(2).map(|t| parse_reg(t, line_no)).transpose()?;
                DynInst::load(pc, dst, base, addr, MemSize::B8)
            }
            "st" => {
                arity(2..=3)?;
                let data = parse_reg(args[0], line_no)?;
                let addr = parse_addr(args[1], line_no)?;
                let base = args.get(2).map(|t| parse_reg(t, line_no)).transpose()?;
                DynInst::store(pc, data, base, addr, MemSize::B8)
            }
            "br.t" | "br.nt" => {
                arity(2..=2)?;
                let target = parse_num(args[0], line_no)?;
                let cond = parse_reg(args[1], line_no)?;
                DynInst::branch(pc, cond, mnemonic == "br.t", target)
            }
            "jmp" => {
                arity(1..=1)?;
                DynInst::jump(pc, parse_num(args[0], line_no)?)
            }
            "nop" => {
                arity(0..=0)?;
                DynInst::nop(pc)
            }
            other => return Err(err(line_no, format!("unknown mnemonic `{other}`"))),
        };
        out.push(inst);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_every_mnemonic() {
        let prog = assemble(
            "# a demo of everything
             alu r1, r2, r3
             mul r4, r4
             div r5, r5
             ld  r2, [0x1000]
             ld  r2, [0x1000], r7
             st  r2, [0x2000]
             br.t 0x40, r1
             br.nt 0x44, r1
             jmp 0x100
             nop",
            0x400,
        )
        .unwrap();
        assert_eq!(prog.len(), 10);
        assert_eq!(prog[0].pc, 0x400);
        assert_eq!(prog[9].pc, 0x400 + 9 * 4);
        assert!(matches!(prog[1].kind, InstKind::IntMul));
        assert!(matches!(prog[2].kind, InstKind::IntDiv));
        assert_eq!(prog[3].kind.mem_addr(), Some(0x1000));
        // Loads carry their base register in the first source slot.
        assert_eq!(prog[4].srcs[0], Some(ArchReg::new(7)));
        assert!(prog[5].kind.is_store());
        assert!(matches!(
            prog[6].kind,
            InstKind::Branch {
                taken: true,
                target: 0x40
            }
        ));
        assert!(matches!(
            prog[7].kind,
            InstKind::Branch { taken: false, .. }
        ));
        assert!(matches!(prog[8].kind, InstKind::Jump { target: 0x100 }));
        assert!(matches!(prog[9].kind, InstKind::Nop));
    }

    #[test]
    fn reports_errors_with_line_numbers() {
        let e = assemble("nop\n frobnicate r1", 0).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));

        let e = assemble("ld r99, [0x0]", 0).unwrap_err();
        assert!(e.message.contains("out of range"));

        let e = assemble("ld r1, 0x40", 0).unwrap_err();
        assert!(e.message.contains("[address]"));

        let e = assemble("br.t r1", 0).unwrap_err();
        assert!(e.message.contains("number") || e.message.contains("operands"));
    }

    #[test]
    fn comments_and_blanks_do_not_consume_pcs() {
        let prog = assemble("\n# header\nnop\n\n  # mid\nnop\n", 0).unwrap();
        assert_eq!(prog.len(), 2);
        assert_eq!(prog[1].pc, 4);
    }

    #[test]
    fn wrong_arity_is_rejected() {
        assert!(assemble("jmp 0x1, 0x2", 0).is_err());
        assert!(assemble("nop r1", 0).is_err());
        assert!(assemble("st r1", 0).is_err());
    }

    #[test]
    fn assembled_program_runs_through_the_interpreter() {
        use crate::interp::Interpreter;
        let prog = assemble(
            "alu r1, r1
             st  r1, [0x100]
             ld  r2, [0x100]
             alu r3, r2",
            0,
        )
        .unwrap();
        let vals = Interpreter::new().run(&prog);
        assert_eq!(vals.len(), 3); // alu, ld, alu
    }
}
