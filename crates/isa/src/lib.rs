//! Generic RISC-like ISA for the Sharing Architecture simulator.
//!
//! The Sharing Architecture paper drives its simulator, SSim, with
//! committed-path dynamic instruction traces produced by GEM5 (Alpha ISA).
//! This crate provides the equivalent substrate for our reproduction: a
//! small, explicit dynamic-instruction record ([`DynInst`]) over a generic
//! register file ([`ArchReg`]), together with a sequential architectural
//! interpreter ([`interp::Interpreter`]) used as the golden reference when
//! verifying that the out-of-order, multi-Slice pipeline preserves dataflow.
//!
//! The ISA is deliberately *micro-architecture shaped* rather than
//! binary-encoded: the simulator only ever needs operand dependences, the
//! operation class (for latency and which functional unit executes it),
//! effective addresses for memory operations, and branch outcomes. That is
//! exactly the information a GEM5 trace record carries.
//!
//! # Example
//!
//! ```
//! use sharing_isa::{ArchReg, DynInst, InstKind};
//!
//! // r3 <- r1 + r2
//! let add = DynInst::alu(0x1000, ArchReg::new(3), &[ArchReg::new(1), ArchReg::new(2)]);
//! assert_eq!(add.kind, InstKind::IntAlu);
//! assert_eq!(add.dst, Some(ArchReg::new(3)));
//! assert!(!add.is_mem());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod inst;
pub mod interp;
pub mod regs;

pub use inst::{DynInst, InstKind, MemSize, SrcRegs};
pub use interp::{ArchState, Interpreter};
pub use regs::{ArchReg, NUM_ARCH_REGS};

/// The capacity scale of the simulation's swept axis.
///
/// The paper evaluates multi-billion-instruction GEM5 traces against L2
/// capacities from 0 KB to 8 MB. Synthetic traces of ~10⁵ instructions
/// cannot build up reuse over multi-megabyte working sets, so this
/// reproduction co-scales every capacity — workload memory regions, the
/// L1s, and the L2 banks — down by this factor while keeping all *reported*
/// sizes nominal. The L1 : L2 : working-set ratios, and therefore the
/// hit-rate curves and every shape-level result, are preserved. Line size
/// is not scaled (spatial locality is modeled per 64-byte line), so the
/// scaled caches hold proportionally fewer lines; see DESIGN.md §3.
pub const CAPACITY_SCALE: u64 = 16;
