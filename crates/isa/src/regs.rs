//! Architectural register names.

use std::fmt;

/// Number of architectural general-purpose registers.
///
/// The paper's global logical register space is sized for the maximum
/// number of Slices in a VCore; the *architectural* space it renames from is
/// a conventional 32-entry RISC register file (GEM5's Alpha traces), which we
/// mirror here.
pub const NUM_ARCH_REGS: usize = 32;

/// An architectural register name, `r0`..`r31`.
///
/// `ArchReg` is a validated newtype: it can only hold indices below
/// [`NUM_ARCH_REGS`], so downstream tables (RATs, scoreboards) can index
/// arrays without bounds anxiety.
///
/// # Example
///
/// ```
/// use sharing_isa::ArchReg;
/// let r = ArchReg::new(7);
/// assert_eq!(r.index(), 7);
/// assert_eq!(r.to_string(), "r7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArchReg(u8);

impl ArchReg {
    /// Creates a register name.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_ARCH_REGS`.
    #[must_use]
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_ARCH_REGS,
            "architectural register index {index} out of range (max {})",
            NUM_ARCH_REGS - 1
        );
        ArchReg(index)
    }

    /// Creates a register name without the range check, returning `None` when
    /// out of range instead of panicking.
    #[must_use]
    pub fn try_new(index: u8) -> Option<Self> {
        ((index as usize) < NUM_ARCH_REGS).then_some(ArchReg(index))
    }

    /// The register's index, `0..NUM_ARCH_REGS`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over all architectural registers in index order.
    pub fn all() -> impl Iterator<Item = ArchReg> {
        (0..NUM_ARCH_REGS as u8).map(ArchReg)
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Debug for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<ArchReg> for usize {
    fn from(r: ArchReg) -> usize {
        r.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_valid_indices() {
        for i in 0..NUM_ARCH_REGS as u8 {
            assert_eq!(ArchReg::new(i).index(), i as usize);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        let _ = ArchReg::new(NUM_ARCH_REGS as u8);
    }

    #[test]
    fn try_new_is_total() {
        assert!(ArchReg::try_new(0).is_some());
        assert!(ArchReg::try_new(31).is_some());
        assert!(ArchReg::try_new(32).is_none());
        assert!(ArchReg::try_new(255).is_none());
    }

    #[test]
    fn all_enumerates_each_register_once() {
        let regs: Vec<_> = ArchReg::all().collect();
        assert_eq!(regs.len(), NUM_ARCH_REGS);
        for (i, r) in regs.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn display_matches_convention() {
        assert_eq!(ArchReg::new(0).to_string(), "r0");
        assert_eq!(format!("{:?}", ArchReg::new(31)), "r31");
    }
}
