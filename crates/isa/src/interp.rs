//! Sequential architectural interpreter.
//!
//! The interpreter defines *value semantics* for the generic ISA so that the
//! out-of-order simulator can be checked end-to-end: every instruction's
//! result is a deterministic mix of its source values and its PC, loads read
//! whatever the youngest earlier store to the same address wrote, and the
//! committed destination-value stream is a function only of program order.
//! If the multi-Slice pipeline (two-stage renaming, remote operand
//! request/reply, unordered LSQ, replay after violations…) commits any value
//! that differs from the interpreter's, it has broken dataflow.

use crate::inst::{DynInst, InstKind};
use crate::regs::{ArchReg, NUM_ARCH_REGS};
use std::collections::HashMap;

/// Architectural register + memory state with deterministic value semantics.
#[derive(Clone, Debug, Default)]
pub struct ArchState {
    regs: [u64; NUM_ARCH_REGS],
    mem: HashMap<u64, u64>,
}

/// Mixes operand values into a result deterministically.
///
/// A cheap avalanche mix (xorshift-multiply) — the specific function is
/// irrelevant as long as it is deterministic and sensitive to every input.
#[must_use]
pub fn mix(pc: u64, a: u64, b: u64) -> u64 {
    let mut x = pc
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(a.rotate_left(17))
        .wrapping_add(b.rotate_left(31))
        .wrapping_add(1);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 29;
    x
}

impl ArchState {
    /// A fresh state: all registers zero, memory reads-as-address.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a register.
    #[must_use]
    pub fn reg(&self, r: ArchReg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register.
    pub fn set_reg(&mut self, r: ArchReg, v: u64) {
        self.regs[r.index()] = v;
    }

    /// Reads memory at a (line-aligned-agnostic) address. Untouched memory
    /// reads as a hash of its address, so loads are value-sensitive even
    /// before the first store.
    #[must_use]
    pub fn mem(&self, addr: u64) -> u64 {
        self.mem
            .get(&addr)
            .copied()
            .unwrap_or_else(|| mix(0xDEAD_BEEF, addr, 0))
    }

    /// Writes memory.
    pub fn set_mem(&mut self, addr: u64, v: u64) {
        self.mem.insert(addr, v);
    }
}

/// Sequential reference interpreter over [`ArchState`].
///
/// # Example
///
/// ```
/// use sharing_isa::{ArchReg, DynInst, Interpreter};
///
/// let mut interp = Interpreter::new();
/// let i = DynInst::alu(0x100, ArchReg::new(1), &[ArchReg::new(2)]);
/// let committed = interp.step(&i);
/// assert_eq!(committed, Some(interp.state().reg(ArchReg::new(1))));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Interpreter {
    state: ArchState,
    committed: u64,
}

impl Interpreter {
    /// Creates an interpreter over a fresh architectural state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The current architectural state.
    #[must_use]
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// Number of instructions committed so far.
    #[must_use]
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Executes one instruction in program order; returns the value written
    /// to the destination register, if the instruction has one.
    pub fn step(&mut self, inst: &DynInst) -> Option<u64> {
        let s0 = inst.srcs[0].map_or(0, |r| self.state.reg(r));
        let s1 = inst.srcs[1].map_or(0, |r| self.state.reg(r));
        self.committed += 1;
        match inst.kind {
            InstKind::Load { addr, .. } => {
                let v = mix(inst.pc, self.state.mem(addr), s0);
                let dst = inst.dst.expect("load must have a destination");
                self.state.set_reg(dst, v);
                Some(v)
            }
            InstKind::Store { addr, .. } => {
                // srcs[0] is the data operand by builder convention.
                self.state.set_mem(addr, mix(inst.pc, s0, s1));
                None
            }
            InstKind::Branch { .. }
            | InstKind::Jump { .. }
            | InstKind::JumpIndirect { .. }
            | InstKind::Nop => None,
            InstKind::IntAlu | InstKind::IntMul | InstKind::IntDiv => {
                let v = mix(inst.pc, s0, s1);
                if let Some(dst) = inst.dst {
                    self.state.set_reg(dst, v);
                    Some(v)
                } else {
                    None
                }
            }
        }
    }

    /// Executes a whole program, returning the committed destination-value
    /// stream (one entry per register-writing instruction).
    pub fn run<'a, I: IntoIterator<Item = &'a DynInst>>(&mut self, program: I) -> Vec<u64> {
        program.into_iter().filter_map(|i| self.step(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::MemSize;

    fn r(i: u8) -> ArchReg {
        ArchReg::new(i)
    }

    #[test]
    fn alu_results_depend_on_sources() {
        let mut a = Interpreter::new();
        let mut b = Interpreter::new();
        // Seed r1 differently via different-pc ALU ops.
        a.step(&DynInst::alu(0x10, r(1), &[]));
        b.step(&DynInst::alu(0x14, r(1), &[]));
        let va = a.step(&DynInst::alu(0x20, r(2), &[r(1)]));
        let vb = b.step(&DynInst::alu(0x20, r(2), &[r(1)]));
        assert_ne!(
            va, vb,
            "different source values must yield different results"
        );
    }

    #[test]
    fn store_load_roundtrip_is_program_ordered() {
        let mut interp = Interpreter::new();
        interp.step(&DynInst::alu(0x0, r(1), &[]));
        interp.step(&DynInst::store(0x4, r(1), None, 0x1000, MemSize::B8));
        let v1 = interp.step(&DynInst::load(0x8, r(2), None, 0x1000, MemSize::B8));
        // A second, different store to the same address changes what a later
        // load sees.
        interp.step(&DynInst::alu(0xC, r(1), &[r(2)]));
        interp.step(&DynInst::store(0x10, r(1), None, 0x1000, MemSize::B8));
        let v2 = interp.step(&DynInst::load(0x14, r(2), None, 0x1000, MemSize::B8));
        assert_ne!(v1, v2);
    }

    #[test]
    fn untouched_memory_reads_deterministically() {
        let s = ArchState::new();
        assert_eq!(s.mem(0x42), s.mem(0x42));
        assert_ne!(s.mem(0x42), s.mem(0x43));
    }

    #[test]
    fn run_collects_only_register_writes() {
        let prog = vec![
            DynInst::alu(0x0, r(1), &[]),
            DynInst::branch(0x4, r(1), true, 0x100),
            DynInst::store(0x100, r(1), None, 0x2000, MemSize::B8),
            DynInst::load(0x104, r(2), None, 0x2000, MemSize::B8),
        ];
        let mut interp = Interpreter::new();
        let vals = interp.run(&prog);
        assert_eq!(vals.len(), 2); // alu + load
        assert_eq!(interp.committed(), 4);
    }

    #[test]
    fn mix_is_sensitive_to_every_input() {
        assert_ne!(mix(1, 2, 3), mix(2, 2, 3));
        assert_ne!(mix(1, 2, 3), mix(1, 3, 3));
        assert_ne!(mix(1, 2, 3), mix(1, 2, 4));
    }
}
