//! `ssim` — command-line front end for the Sharing Architecture simulator.
//!
//! The paper's SSim "allows all critical micro-architecture parameters and
//! latencies to be set from an XML configuration file" and "reports the
//! cycles executed for a given workload along with cache miss rates and
//! stage-based micro-architecture stalls and statistics" (§5.2). This
//! binary is that tool, with JSON standing in for XML:
//!
//! ```text
//! ssim run --benchmark gcc --slices 4 --banks 8
//! ssim run --benchmark omnetpp --config myconfig.json --json
//! ssim sweep --benchmark mcf
//! ssim sweep --benchmark mcf --daemon 127.0.0.1:42014   # via a running ssimd
//! ssim dc --scenario bursty.json --seed 7   # datacenter market simulation
//! ssim serve --workers 4            # run the ssimd daemon in-process
//! ssim submit --benchmark mcf       # submit a job to a running daemon
//! ssim config                       # emit the default config as JSON
//! ssim list                         # available benchmarks
//! ```

use sharing_ssim::{parse, usage, Command};
use std::io::Write;
use std::process::ExitCode;

/// Prints to stdout, treating a broken pipe as a clean exit (the reader
/// — `head`, `grep -q` — is done with us) and any other write error as
/// a failure.
fn print_output(text: &str) -> ExitCode {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    match writeln!(out, "{text}").and_then(|()| out.flush()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ssim: stdout: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args) {
        Ok(Command::Help) => print_output(&usage()),
        Ok(cmd) => match sharing_ssim::execute(&cmd) {
            Ok(output) => print_output(&output),
            Err(e) => {
                eprintln!("ssim: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("ssim: {e}\n\n{}", usage());
            ExitCode::FAILURE
        }
    }
}
