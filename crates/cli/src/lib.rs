//! Library half of the `ssim` CLI: argument parsing and command execution,
//! separated from `main` so they are unit-testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sharing_core::{EngineKind, RunOptions, SimConfig, Simulator, VmSimulator};
use sharing_dc::{BillingMode, DcSim, Scenario};
use sharing_obs::TraceBuffer;
use sharing_trace::{
    extra_profile, Benchmark, TraceCache, TraceSpec, WorkloadProfile, ALL_BENCHMARKS,
    EXTRA_PROFILES,
};
use std::fmt;
use std::fmt::Write as _;

/// A parsed CLI invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `ssim run …` — simulate one benchmark on one configuration.
    Run(RunArgs),
    /// `ssim sweep …` — Slice and cache sweeps for one benchmark.
    Sweep(SweepArgs),
    /// `ssim dc …` — run a datacenter scenario through `sharing-dc`.
    Dc(DcArgs),
    /// `ssim config` — emit the default configuration as JSON.
    EmitConfig,
    /// `ssim serve …` — run the ssimd simulation daemon in-process.
    Serve(ServeArgs),
    /// `ssim submit …` — submit a job to a running ssimd daemon.
    Submit(SubmitArgs),
    /// `ssim chaos …` — drive a worker fleet through a seeded fault plan
    /// and check the invariants hold.
    Chaos(ChaosArgs),
    /// `ssim profile …` — cycle-attribution profile of one run: where
    /// every simulated cycle went, conservation-exact per Slice.
    Profile(ProfileArgs),
    /// `ssim trace-pack in.jsonl out.json` — re-wrap a streamed span
    /// JSONL file (from `serve --trace-out *.jsonl`) as Chrome trace JSON.
    TracePack(TracePackArgs),
    /// `ssim list` — list available benchmarks.
    List,
    /// `ssim help` / `--help`.
    Help,
}

/// What workload a `run` simulates.
#[derive(Clone, Debug, PartialEq)]
pub enum Workload {
    /// One of the paper's fifteen calibrated benchmarks.
    Benchmark(Benchmark),
    /// One of the extra seeded profiles (`bursty`, `phaseshift`),
    /// resolved by name like a benchmark.
    Extra(String),
    /// A user-supplied [`WorkloadProfile`] JSON file.
    ProfileFile(String),
    /// A hand-written assembly file (see [`sharing_isa::asm`]), repeated
    /// until the requested trace length.
    AsmFile(String),
}

/// Arguments for `ssim run`.
#[derive(Clone, Debug, PartialEq)]
pub struct RunArgs {
    /// The workload to simulate.
    pub workload: Workload,
    /// Slice count.
    pub slices: usize,
    /// L2 bank count.
    pub banks: usize,
    /// Trace length.
    pub len: usize,
    /// Trace seed.
    pub seed: u64,
    /// Optional JSON config file overriding Tables 2/3 parameters.
    pub config_path: Option<String>,
    /// Emit machine-readable JSON instead of the human report.
    pub json: bool,
    /// When set, write a Chrome trace of the run's phases here.
    pub trace_out: Option<String>,
    /// Engine implementation (`event` by default; `legacy` is the polled
    /// oracle; `sharded` adds intra-run worker threads — results are
    /// byte-identical in every case).
    pub engine: EngineKind,
    /// Worker threads advancing a threaded VM's VCores between barriers
    /// (`None` = 1, or machine-sized under `--engine sharded`). Output
    /// is byte-identical for every value.
    pub threads: Option<usize>,
}

/// Arguments for `ssim sweep`.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepArgs {
    /// Benchmark name.
    pub benchmark: Benchmark,
    /// Trace length.
    pub len: usize,
    /// Trace seed.
    pub seed: u64,
    /// When set, submit the sweep to a running ssimd daemon at this
    /// address instead of simulating in-process, sharing its result cache.
    pub daemon: Option<String>,
    /// Worker threads for the local grid (`None` sizes to the machine).
    /// The rendered table is byte-identical for every value.
    pub jobs: Option<usize>,
    /// When set, also write the grid as machine-readable CSV here.
    pub csv_out: Option<String>,
    /// When set, write a Chrome trace with one span per sweep point here.
    pub trace_out: Option<String>,
}

/// Arguments for `ssim dc`.
#[derive(Clone, Debug, PartialEq)]
pub struct DcArgs {
    /// Scenario JSON file; `None` only with `emit_example`.
    pub scenario_path: Option<String>,
    /// Event seed (same seed ⇒ byte-identical logs and CSV).
    pub seed: u64,
    /// Billing mode; `None` runs both and prints the comparison.
    pub mode: Option<BillingMode>,
    /// When set, write per-mode `<scenario>-<mode>.csv` / `.log` files
    /// into this directory.
    pub out_dir: Option<String>,
    /// Print the built-in example scenario as pretty JSON and exit —
    /// the easiest way to get a schema template.
    pub emit_example: bool,
    /// When set, write a Chrome trace with logical-cycle spans for every
    /// epoch's auction/placement/billing phases here. Tracing never
    /// changes the simulated outcome (logs and CSV stay byte-identical).
    pub trace_out: Option<String>,
}

/// Arguments for `ssim profile`.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileArgs {
    /// The workload to profile. The attribution runs on one VCore, so
    /// only single-thread workloads are accepted (`execute` rejects
    /// PARSEC and threaded extras with a clean error).
    pub workload: Workload,
    /// Slice count.
    pub slices: usize,
    /// L2 bank count.
    pub banks: usize,
    /// Trace length.
    pub len: usize,
    /// Trace seed.
    pub seed: u64,
    /// Optional JSON config file overriding Tables 2/3 parameters.
    pub config_path: Option<String>,
    /// Emit machine-readable JSON (`{"result":…,"profile":…}`) instead
    /// of the per-Slice table.
    pub json: bool,
}

/// Arguments for `ssim trace-pack`.
#[derive(Clone, Debug, PartialEq)]
pub struct TracePackArgs {
    /// The streamed span JSONL file to read (complete lines only; a
    /// truncated tail from a crashed daemon is skipped, not fatal).
    pub input: String,
    /// Where to write the Chrome trace JSON document.
    pub output: String,
}

/// Arguments for `ssim serve`.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeArgs {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker pool size; `None` sizes to the machine.
    pub workers: Option<usize>,
    /// Bounded job-queue capacity.
    pub queue: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache: usize,
    /// When set, the result cache is loaded from this file on start and
    /// saved back on graceful shutdown.
    pub cache_file: Option<String>,
    /// When set, the daemon writes a Chrome trace of every executed job
    /// here on graceful shutdown.
    pub trace_out: Option<String>,
    /// Remote worker daemon addresses (repeatable `--worker`). When
    /// non-empty the daemon runs as a coordinator: jobs fan out to these
    /// workers with health checks and bounded retry instead of executing
    /// in the local pool.
    pub workers_remote: Vec<String>,
    /// Per-dispatch retry budget in coordinator mode.
    pub retries: u32,
    /// Per-job remote timeout in milliseconds in coordinator mode.
    pub job_timeout_ms: u64,
    /// When set, an HTTP/1.1 front door binds here alongside the TCP
    /// listener (`/health`, `/metrics`, `/status`, `/jobs`).
    pub http: Option<String>,
    /// When set, write the daemon pid here on start (refusing to start
    /// if another live process holds it) and remove it on exit.
    pub pidfile: Option<String>,
}

/// What `ssim submit` asks the daemon to do.
#[derive(Clone, Debug, PartialEq)]
pub enum SubmitAction {
    /// Submit one benchmark run.
    Run {
        /// Benchmark name.
        benchmark: Benchmark,
        /// Slice count.
        slices: usize,
        /// L2 bank count.
        banks: usize,
        /// Trace length.
        len: usize,
        /// Trace seed.
        seed: u64,
    },
    /// Submit a datacenter scenario.
    Dc {
        /// Scenario JSON file.
        scenario_path: String,
        /// Event seed.
        seed: u64,
        /// Billing mode; `None` runs both.
        mode: Option<BillingMode>,
    },
    /// Liveness check.
    Ping,
    /// Protocol-version negotiation: print the version the daemon settled
    /// on.
    Hello,
    /// Fetch the server metrics snapshot.
    Stats,
    /// Fetch the server metrics as Prometheus text exposition.
    Metrics,
    /// Ask the daemon to drain and stop.
    Shutdown,
}

/// Arguments for `ssim submit`.
#[derive(Clone, Debug, PartialEq)]
pub struct SubmitArgs {
    /// Daemon address.
    pub addr: String,
    /// When set, talk to the daemon's HTTP front door at this base URL
    /// (e.g. `http://127.0.0.1:8080`) instead of the TCP protocol.
    pub url: Option<String>,
    /// Distributed-trace id to stamp on the job envelope. The daemon
    /// correlates every span the job produces (queue wait, dispatch,
    /// remote execution) under this id in its `--trace-out` file.
    pub trace: Option<u64>,
    /// The request to make.
    pub action: SubmitAction,
}

/// Arguments for `ssim chaos`.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosArgs {
    /// Fault-plan JSON file; `None` uses the built-in replay-exact
    /// smoke plan seeded by `seed`.
    pub plan_path: Option<String>,
    /// Seed for the built-in plan (ignored when `--plan` is given).
    pub seed: u64,
    /// Worker daemons to spawn under the coordinator.
    pub workers: usize,
    /// First worker port; consecutive workers take consecutive ports.
    /// 0 picks free ephemeral ports (fixed ports keep worker addresses
    /// — and so any address-targeted rules — stable across runs).
    pub base_port: u16,
    /// Trace length for the mix's jobs (small keeps the run quick).
    pub len: usize,
    /// When set, write the injection schedule here, one diffable line
    /// per injected fault.
    pub schedule_out: Option<String>,
}

/// CLI errors.
#[derive(Clone, Debug, PartialEq)]
pub enum CliError {
    /// No subcommand given.
    MissingCommand,
    /// Unknown subcommand.
    UnknownCommand(String),
    /// Unknown flag for the subcommand.
    UnknownFlag(String),
    /// A flag was given without its value.
    MissingValue(String),
    /// A value failed to parse.
    BadValue(String, String),
    /// Unknown benchmark name.
    UnknownBenchmark(String),
    /// Config file could not be read or parsed.
    BadConfig(String),
    /// Workload profile file could not be read or parsed.
    BadProfile(String),
    /// Assembly file could not be read or assembled.
    BadAsm(String),
    /// The configuration was rejected by the simulator.
    BadSimConfig(String),
    /// A daemon could not be started or reached.
    Server(String),
    /// Scenario file could not be read, parsed, or validated.
    BadScenario(String),
    /// Two flags that cannot be used together.
    ConflictingFlags(String),
    /// The `--trace-out` file could not be written.
    TraceOut(String),
    /// The `--csv-out` file could not be written.
    CsvOut(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::MissingCommand => write!(f, "expected a subcommand"),
            CliError::UnknownCommand(c) => write!(f, "unknown subcommand `{c}`"),
            CliError::UnknownFlag(x) => write!(f, "unknown flag `{x}`"),
            CliError::MissingValue(x) => write!(f, "flag `{x}` needs a value"),
            CliError::BadValue(x, v) => write!(f, "flag `{x}`: cannot parse `{v}`"),
            CliError::UnknownBenchmark(b) => {
                write!(f, "unknown benchmark `{b}` (try `ssim list`)")
            }
            CliError::BadConfig(e) => write!(f, "config file: {e}"),
            CliError::BadProfile(e) => write!(f, "workload profile: {e}"),
            CliError::BadAsm(e) => write!(f, "assembly: {e}"),
            CliError::BadSimConfig(e) => write!(f, "invalid configuration: {e}"),
            CliError::Server(e) => write!(f, "server: {e}"),
            CliError::BadScenario(e) => write!(f, "scenario: {e}"),
            CliError::ConflictingFlags(e) => write!(f, "{e}"),
            CliError::TraceOut(e) => write!(f, "trace output: {e}"),
            CliError::CsvOut(e) => write!(f, "csv output: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

/// The usage string.
#[must_use]
pub fn usage() -> String {
    "ssim — Sharing Architecture simulator (Zhou & Wentzlaff, ASPLOS 2014 reproduction)

USAGE:
    ssim run   (--benchmark <name> | --profile workload.json | --asm prog.s)
               [--slices N] [--banks N] [--len N]
               [--seed N] [--config file.json] [--json] [--trace-out FILE]
               [--engine event|legacy|sharded] [--threads N]
    ssim sweep --benchmark <name> [--len N] [--seed N] [--jobs N]
               [--daemon HOST:PORT] [--csv-out FILE] [--trace-out FILE]
    ssim dc    (--scenario file.json | --emit-example)
               [--seed N] [--mode sharing|fixed] [--out DIR] [--trace-out FILE]
    ssim profile --benchmark <name> [--slices N] [--banks N] [--len N]
               [--seed N] [--config file.json] [--json]
    ssim serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
               [--cache-file PATH] [--trace-out FILE]
               [--http HOST:PORT] [--pidfile PATH]
               [--worker HOST:PORT]... [--retries N] [--job-timeout-ms N]
    ssim submit [--addr HOST:PORT | --url http://HOST:PORT] [--trace ID]
               (--benchmark <name> [--slices N] [--banks N] [--len N] [--seed N]
                | --dc scenario.json [--seed N] [--mode sharing|fixed]
                | --ping | --hello | --stats | --metrics | --shutdown)
    ssim chaos [--plan plan.json | --seed N] [--workers N] [--base-port P]
               [--len N] [--schedule-out FILE]
    ssim trace-pack <in.jsonl> <out.json>
    ssim config            emit the default configuration as JSON
    ssim list              list available benchmarks
    ssim help              this message

EXAMPLES:
    ssim run --benchmark gcc --slices 4 --banks 8
    ssim run --profile my_workload.json --slices 2
    ssim config > base.json && ssim run --benchmark mcf --config base.json
    ssim dc --emit-example > bursty.json && ssim dc --scenario bursty.json --seed 7
    ssim serve --workers 4 --cache-file /tmp/ssimd.cache &
    ssim sweep --benchmark mcf --daemon 127.0.0.1:42014
    ssim serve --addr :42020 --worker host-a:42014 --worker host-b:42014
    ssim submit --hello       # negotiated protocol version
    ssim submit --benchmark mcf --slices 2 --banks 4
    ssim submit --dc bursty.json --mode sharing
    ssim submit --stats && ssim submit --shutdown
    ssim dc --scenario bursty.json --trace-out dc.trace.json
    ssim submit --metrics    # Prometheus text exposition
    ssim serve --http 127.0.0.1:8080 --pidfile /tmp/ssimd.pid &
    ssim submit --url http://127.0.0.1:8080 --benchmark mcf --slices 2
    ssim run --benchmark bursty --slices 2   # extra seeded profile
    ssim chaos --seed 2014 --schedule-out sched.txt
    ssim profile --benchmark mcf --slices 4 --banks 8
    ssim serve --trace-out fleet.trace.jsonl &   # streaming span sink
    ssim submit --benchmark gcc --trace 42
    ssim trace-pack fleet.trace.jsonl fleet.trace.json

`ssim serve --http` adds an HTTP/1.1 front door (GET /health, /metrics,
/status; POST /jobs + GET /jobs/<id> polling); `--pidfile` writes the
daemon pid and SIGTERM/SIGINT drain gracefully. `ssim submit --url`
drives that front door instead of the TCP protocol.

`ssim chaos` spawns worker daemons, runs a job mix fault-free, then
replays it under a seeded fault plan (connection drops, partitions,
worker kills) and asserts results stay byte-identical, no job is lost,
and the drain terminates. Setting SSIM_CHAOS_PLAN to plan JSON arms any
`ssim serve` daemon directly; SSIM_CHAOS_SCHEDULE names a file its
injection schedule is written to on graceful shutdown.

`ssim profile` attributes every simulated cycle of a run to one of six
buckets per Slice (fetch, issue, fu_busy, dram_stall, rob_full, idle);
the buckets sum exactly to the run's total cycles, and same seed ⇒
byte-identical output. Profiling never perturbs the simulated result.

`ssim run --engine` picks the timing-engine implementation: `event`
(default) schedules resource wake-ups discretely and skips dead cycles;
`legacy` is the original per-cycle polled engine; `sharded` is the
event engine plus intra-run worker threads for threaded/PARSEC VMs
(DESIGN.md §14). All produce byte-identical results — the flag exists
for differential testing and performance comparison. `--threads N`
pins the VM worker count explicitly (any value gives the same bytes;
e.g. `ssim run --benchmark dedup --engine sharded --threads 4`).

`--trace-out` writes Chrome trace_event JSON; open it in Perfetto
(https://ui.perfetto.dev) or chrome://tracing. Simulator spans use
logical (simulated-cycle) time, so tracing never perturbs results.
A `serve --trace-out` path ending in `.jsonl` streams spans through a
bounded-buffer writer instead of dumping at exit (crash-safe; re-wrap
with `ssim trace-pack`). `ssim submit --trace ID` stamps a distributed
trace id on the job so coordinator dispatch spans and remote worker
execution spans land in one merged trace under that id."
        .to_string()
}

fn take_value<'a>(
    flag: &str,
    it: &mut std::slice::Iter<'a, String>,
) -> Result<&'a String, CliError> {
    it.next()
        .ok_or_else(|| CliError::MissingValue(flag.to_string()))
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, CliError> {
    v.parse()
        .map_err(|_| CliError::BadValue(flag.to_string(), v.to_string()))
}

/// Resolves a `--benchmark` value: the paper suite first, then the
/// extra seeded profiles (`bursty`, `phaseshift`).
fn parse_workload_name(v: &str) -> Result<Workload, CliError> {
    if let Some(b) = Benchmark::from_name(v) {
        return Ok(Workload::Benchmark(b));
    }
    if extra_profile(v).is_some() {
        return Ok(Workload::Extra(v.to_string()));
    }
    Err(CliError::UnknownBenchmark(v.to_string()))
}

/// Parses CLI arguments (without the binary name).
///
/// # Errors
///
/// Returns a [`CliError`] describing the first problem found.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let sub = it.next().ok_or(CliError::MissingCommand)?;
    match sub.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "list" => Ok(Command::List),
        "config" => Ok(Command::EmitConfig),
        "run" => {
            let mut out = RunArgs {
                workload: Workload::Benchmark(Benchmark::Gcc),
                slices: 1,
                banks: 2,
                len: 60_000,
                seed: 0xA5_2014,
                config_path: None,
                json: false,
                trace_out: None,
                engine: EngineKind::default(),
                threads: None,
            };
            let mut got_workload = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--benchmark" => {
                        out.workload = parse_workload_name(take_value(flag, &mut it)?)?;
                        got_workload = true;
                    }
                    "--profile" => {
                        out.workload = Workload::ProfileFile(take_value(flag, &mut it)?.clone());
                        got_workload = true;
                    }
                    "--asm" => {
                        out.workload = Workload::AsmFile(take_value(flag, &mut it)?.clone());
                        got_workload = true;
                    }
                    "--slices" => out.slices = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--banks" => out.banks = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--len" => out.len = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--seed" => out.seed = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--config" => out.config_path = Some(take_value(flag, &mut it)?.clone()),
                    "--json" => out.json = true,
                    "--trace-out" => out.trace_out = Some(take_value(flag, &mut it)?.clone()),
                    "--engine" => {
                        let v = take_value(flag, &mut it)?;
                        out.engine = EngineKind::from_name(v)
                            .ok_or_else(|| CliError::BadValue(flag.clone(), v.clone()))?;
                    }
                    "--threads" => {
                        let n: usize = parse_num(flag, take_value(flag, &mut it)?)?;
                        if n == 0 {
                            return Err(CliError::BadValue(flag.clone(), "0".to_string()));
                        }
                        out.threads = Some(n);
                    }
                    other => return Err(CliError::UnknownFlag(other.to_string())),
                }
            }
            if !got_workload {
                return Err(CliError::MissingValue(
                    "--benchmark, --profile or --asm".to_string(),
                ));
            }
            Ok(Command::Run(out))
        }
        "sweep" => {
            let mut out = SweepArgs {
                benchmark: Benchmark::Gcc,
                len: 30_000,
                seed: 0xA5_2014,
                daemon: None,
                jobs: None,
                csv_out: None,
                trace_out: None,
            };
            let mut got_benchmark = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--benchmark" => {
                        let v = take_value(flag, &mut it)?;
                        out.benchmark = Benchmark::from_name(v)
                            .ok_or_else(|| CliError::UnknownBenchmark(v.clone()))?;
                        got_benchmark = true;
                    }
                    "--len" => out.len = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--seed" => out.seed = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--daemon" => out.daemon = Some(take_value(flag, &mut it)?.clone()),
                    "--jobs" => out.jobs = Some(parse_num(flag, take_value(flag, &mut it)?)?),
                    "--csv-out" => out.csv_out = Some(take_value(flag, &mut it)?.clone()),
                    "--trace-out" => out.trace_out = Some(take_value(flag, &mut it)?.clone()),
                    other => return Err(CliError::UnknownFlag(other.to_string())),
                }
            }
            if !got_benchmark {
                return Err(CliError::MissingValue("--benchmark".to_string()));
            }
            Ok(Command::Sweep(out))
        }
        "dc" => {
            let mut out = DcArgs {
                scenario_path: None,
                seed: 0xA5_2014,
                mode: None,
                out_dir: None,
                emit_example: false,
                trace_out: None,
            };
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--scenario" => out.scenario_path = Some(take_value(flag, &mut it)?.clone()),
                    "--seed" => out.seed = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--mode" => {
                        let v = take_value(flag, &mut it)?;
                        out.mode = Some(
                            BillingMode::parse(v)
                                .map_err(|_| CliError::BadValue(flag.clone(), v.clone()))?,
                        );
                    }
                    "--out" => out.out_dir = Some(take_value(flag, &mut it)?.clone()),
                    "--emit-example" => out.emit_example = true,
                    "--trace-out" => out.trace_out = Some(take_value(flag, &mut it)?.clone()),
                    other => return Err(CliError::UnknownFlag(other.to_string())),
                }
            }
            if out.scenario_path.is_none() && !out.emit_example {
                return Err(CliError::MissingValue(
                    "--scenario or --emit-example".to_string(),
                ));
            }
            if out.scenario_path.is_some() && out.emit_example {
                return Err(CliError::ConflictingFlags(
                    "`--scenario` cannot be combined with --emit-example".to_string(),
                ));
            }
            Ok(Command::Dc(out))
        }
        "profile" => {
            let mut out = ProfileArgs {
                workload: Workload::Benchmark(Benchmark::Gcc),
                slices: 1,
                banks: 2,
                len: 60_000,
                seed: 0xA5_2014,
                config_path: None,
                json: false,
            };
            let mut got_workload = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--benchmark" => {
                        out.workload = parse_workload_name(take_value(flag, &mut it)?)?;
                        got_workload = true;
                    }
                    "--slices" => out.slices = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--banks" => out.banks = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--len" => out.len = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--seed" => out.seed = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--config" => out.config_path = Some(take_value(flag, &mut it)?.clone()),
                    "--json" => out.json = true,
                    other => return Err(CliError::UnknownFlag(other.to_string())),
                }
            }
            if !got_workload {
                return Err(CliError::MissingValue("--benchmark".to_string()));
            }
            Ok(Command::Profile(out))
        }
        "trace-pack" => {
            let input = it
                .next()
                .ok_or_else(|| CliError::MissingValue("<in.jsonl>".to_string()))?
                .clone();
            let output = it
                .next()
                .ok_or_else(|| CliError::MissingValue("<out.json>".to_string()))?
                .clone();
            if let Some(extra) = it.next() {
                return Err(CliError::UnknownFlag(extra.to_string()));
            }
            Ok(Command::TracePack(TracePackArgs { input, output }))
        }
        "serve" => {
            let mut out = ServeArgs {
                addr: format!("127.0.0.1:{}", sharing_server::DEFAULT_PORT),
                workers: None,
                queue: 64,
                cache: 1024,
                cache_file: None,
                trace_out: None,
                workers_remote: Vec::new(),
                retries: 3,
                job_timeout_ms: 30_000,
                http: None,
                pidfile: None,
            };
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--addr" => out.addr = take_value(flag, &mut it)?.clone(),
                    "--http" => out.http = Some(take_value(flag, &mut it)?.clone()),
                    "--pidfile" => out.pidfile = Some(take_value(flag, &mut it)?.clone()),
                    "--workers" => {
                        out.workers = Some(parse_num(flag, take_value(flag, &mut it)?)?);
                    }
                    "--queue" => out.queue = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--cache" => out.cache = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--cache-file" => out.cache_file = Some(take_value(flag, &mut it)?.clone()),
                    "--trace-out" => out.trace_out = Some(take_value(flag, &mut it)?.clone()),
                    "--worker" => out.workers_remote.push(take_value(flag, &mut it)?.clone()),
                    "--retries" => out.retries = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--job-timeout-ms" => {
                        out.job_timeout_ms = parse_num(flag, take_value(flag, &mut it)?)?;
                    }
                    other => return Err(CliError::UnknownFlag(other.to_string())),
                }
            }
            Ok(Command::Serve(out))
        }
        "submit" => {
            let mut addr = format!("127.0.0.1:{}", sharing_server::DEFAULT_PORT);
            let mut url: Option<String> = None;
            let mut trace: Option<u64> = None;
            let mut action: Option<SubmitAction> = None;
            let (mut slices, mut banks, mut len, mut seed) =
                (1usize, 2usize, 60_000usize, 0xA5_2014u64);
            let mut benchmark: Option<Benchmark> = None;
            let mut dc_path: Option<String> = None;
            let mut mode: Option<BillingMode> = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--addr" => addr = take_value(flag, &mut it)?.clone(),
                    "--url" => url = Some(take_value(flag, &mut it)?.clone()),
                    "--trace" => trace = Some(parse_num(flag, take_value(flag, &mut it)?)?),
                    "--benchmark" => {
                        let v = take_value(flag, &mut it)?;
                        benchmark = Some(
                            Benchmark::from_name(v)
                                .ok_or_else(|| CliError::UnknownBenchmark(v.clone()))?,
                        );
                    }
                    "--dc" => dc_path = Some(take_value(flag, &mut it)?.clone()),
                    "--mode" => {
                        let v = take_value(flag, &mut it)?;
                        mode = Some(
                            BillingMode::parse(v)
                                .map_err(|_| CliError::BadValue(flag.clone(), v.clone()))?,
                        );
                    }
                    "--slices" => slices = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--banks" => banks = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--len" => len = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--seed" => seed = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--ping" => action = Some(SubmitAction::Ping),
                    "--hello" => action = Some(SubmitAction::Hello),
                    "--stats" => action = Some(SubmitAction::Stats),
                    "--metrics" => action = Some(SubmitAction::Metrics),
                    "--shutdown" => action = Some(SubmitAction::Shutdown),
                    other => return Err(CliError::UnknownFlag(other.to_string())),
                }
            }
            let action = match (action, benchmark, dc_path) {
                (Some(a), None, None) => a,
                (None, Some(benchmark), None) => SubmitAction::Run {
                    benchmark,
                    slices,
                    banks,
                    len,
                    seed,
                },
                (None, None, Some(scenario_path)) => SubmitAction::Dc {
                    scenario_path,
                    seed,
                    mode,
                },
                (None, None, None) => {
                    return Err(CliError::MissingValue(
                        "--benchmark, --dc, --ping, --hello, --stats, --metrics or --shutdown"
                            .to_string(),
                    ));
                }
                _ => {
                    return Err(CliError::ConflictingFlags(
                        "pick one of --benchmark, --dc, --ping, --hello, --stats, --metrics, \
                         --shutdown"
                            .to_string(),
                    ));
                }
            };
            if url.is_some() && matches!(action, SubmitAction::Hello | SubmitAction::Shutdown) {
                return Err(CliError::ConflictingFlags(
                    "`--url` supports --ping, --stats, --metrics, --benchmark and --dc; \
                     use the TCP protocol (--addr) for --hello and --shutdown"
                        .to_string(),
                ));
            }
            if trace.is_some()
                && !matches!(action, SubmitAction::Run { .. } | SubmitAction::Dc { .. })
            {
                return Err(CliError::ConflictingFlags(
                    "`--trace` only applies to jobs (--benchmark or --dc)".to_string(),
                ));
            }
            Ok(Command::Submit(SubmitArgs {
                addr,
                url,
                trace,
                action,
            }))
        }
        "chaos" => {
            let mut out = ChaosArgs {
                plan_path: None,
                seed: 2014,
                workers: 2,
                base_port: 0,
                len: 2_000,
                schedule_out: None,
            };
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--plan" => out.plan_path = Some(take_value(flag, &mut it)?.clone()),
                    "--seed" => out.seed = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--workers" => out.workers = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--base-port" => out.base_port = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--len" => out.len = parse_num(flag, take_value(flag, &mut it)?)?,
                    "--schedule-out" => {
                        out.schedule_out = Some(take_value(flag, &mut it)?.clone());
                    }
                    other => return Err(CliError::UnknownFlag(other.to_string())),
                }
            }
            if out.workers == 0 {
                return Err(CliError::BadValue("--workers".to_string(), "0".to_string()));
            }
            Ok(Command::Chaos(out))
        }
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

fn load_config(args: &RunArgs) -> Result<SimConfig, CliError> {
    load_shaped_config(args.config_path.as_deref(), args.slices, args.banks)
}

/// Loads an optional config file and applies the shape flags on top
/// (shared by `run` and `profile`).
fn load_shaped_config(
    config_path: Option<&str>,
    slices: usize,
    banks: usize,
) -> Result<SimConfig, CliError> {
    let mut cfg = match config_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::BadConfig(format!("{path}: {e}")))?;
            sharing_json::from_str::<SimConfig>(&text)
                .map_err(|e| CliError::BadConfig(format!("{path}: {e}")))?
        }
        None => SimConfig::builder()
            .build()
            .map_err(|e| CliError::BadSimConfig(e.to_string()))?,
    };
    // Shape flags override the file.
    cfg = SimConfig::builder()
        .slices(slices)
        .l2_banks(banks)
        .slice_params(cfg.slice)
        .mem_params(cfg.mem)
        .knobs(cfg.knobs)
        .build()
        .map_err(|e| CliError::BadSimConfig(e.to_string()))?;
    Ok(cfg)
}

/// Runs `ssim profile`: one single-thread workload through
/// [`Simulator::run_with`] with profiling on, reporting the conservation-exact
/// per-Slice cycle attribution. Same seed ⇒ byte-identical output.
fn execute_profile(args: &ProfileArgs) -> Result<String, CliError> {
    let cfg = load_shaped_config(args.config_path.as_deref(), args.slices, args.banks)?;
    let spec = TraceSpec::new(args.len, args.seed);
    let traces = TraceCache::global();
    let trace = match &args.workload {
        Workload::Benchmark(b) => {
            if b.is_parsec() {
                return Err(CliError::ConflictingFlags(format!(
                    "`ssim profile` attributes cycles on one VCore; `{}` is a threaded PARSEC \
                     benchmark — pick a single-thread one (see `ssim list`)",
                    b.name()
                )));
            }
            traces.single(*b, &spec)
        }
        Workload::Extra(name) => {
            let profile =
                extra_profile(name).ok_or_else(|| CliError::UnknownBenchmark(name.clone()))?;
            if profile.threads > 1 {
                return Err(CliError::ConflictingFlags(format!(
                    "`ssim profile` attributes cycles on one VCore; extra profile `{name}` is \
                     threaded — pick a single-thread workload (see `ssim list`)"
                )));
            }
            traces
                .profile_single(&profile, &spec)
                .map_err(CliError::BadProfile)?
        }
        other => {
            return Err(CliError::ConflictingFlags(format!(
                "`ssim profile` takes --benchmark only (got {other:?})"
            )));
        }
    };
    let sim = Simulator::new(cfg).expect("validated config");
    let out = sim.run_with(&trace, RunOptions::new().profile());
    let (result, profile) = (out.result, out.profile.expect("profiling requested"));
    if args.json {
        return Ok(format!(
            "{{\"result\":{},\"profile\":{}}}",
            sharing_json::to_string(&result),
            sharing_json::to_string(&profile)
        ));
    }
    let mut out = format!("{}\n\n", result.summary());
    out.push_str(&profile.table());
    Ok(out)
}

/// Runs `ssim trace-pack`: re-wraps a streamed span JSONL file as a
/// Chrome trace document. Incomplete trailing lines (a daemon killed
/// mid-write) are skipped, not fatal — that is the point of streaming.
fn execute_trace_pack(args: &TracePackArgs) -> Result<String, CliError> {
    let text = std::fs::read_to_string(&args.input)
        .map_err(|e| CliError::TraceOut(format!("{}: {e}", args.input)))?;
    let (doc, skipped) = sharing_obs::jsonl_to_chrome(&text);
    std::fs::write(&args.output, &doc)
        .map_err(|e| CliError::TraceOut(format!("{}: {e}", args.output)))?;
    let total = text.lines().filter(|l| !l.trim().is_empty()).count();
    Ok(format!(
        "trace-pack: {} -> {}: {} span(s) packed, {skipped} skipped",
        args.input,
        args.output,
        total - skipped
    ))
}

fn run_one(
    bench: Benchmark,
    cfg: SimConfig,
    len: usize,
    seed: u64,
    obs: Option<&TraceBuffer>,
    engine: EngineKind,
    threads: Option<usize>,
) -> sharing_core::SimResult {
    let spec = TraceSpec::new(len, seed);
    let traces = TraceCache::global();
    if bench.is_parsec() {
        let trace = {
            let _g = obs.map(|o| o.span("trace-gen", "ssim", 0));
            traces.threaded(bench, &spec)
        };
        let _g = obs.map(|o| o.span(format!("simulate {}", bench.name()), "ssim", 0));
        let mut vm = VmSimulator::new(cfg)
            .expect("validated config")
            .with_engine(engine);
        if let Some(n) = threads {
            vm = vm.with_threads(n);
        }
        vm.run(&trace)
    } else {
        let trace = {
            let _g = obs.map(|o| o.span("trace-gen", "ssim", 0));
            traces.single(bench, &spec)
        };
        let sim = Simulator::new(cfg).expect("validated config");
        let _g = obs.map(|o| o.span(format!("simulate {}", bench.name()), "ssim", 0));
        let mut opts = RunOptions::new().engine(engine);
        if let Some(o) = obs {
            // The traced path also emits a logical-cycle span, so the
            // trace shows both wall time and simulated time.
            opts = opts.trace_to(o);
        }
        sim.run_with(&trace, opts).result
    }
}

fn run_workload(
    workload: &Workload,
    cfg: SimConfig,
    len: usize,
    seed: u64,
    obs: Option<&TraceBuffer>,
    engine: EngineKind,
    threads: Option<usize>,
) -> Result<sharing_core::SimResult, CliError> {
    match workload {
        Workload::Benchmark(b) => Ok(run_one(*b, cfg, len, seed, obs, engine, threads)),
        Workload::AsmFile(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::BadAsm(format!("{path}: {e}")))?;
            let block = sharing_isa::asm::assemble(&text, 0x1_0000)
                .map_err(|e| CliError::BadAsm(format!("{path}: {e}")))?;
            let mut block = block;
            if block.is_empty() {
                return Err(CliError::BadAsm(format!("{path}: empty program")));
            }
            // The block repeats as one loop iteration: if it does not
            // already end with taken control flow, close the loop with a
            // jump back to the top so the committed path stays connected.
            let last = block.last().expect("non-empty");
            if last.next_pc() != block[0].pc && last.next_pc() == last.pc + 4 {
                block.push(sharing_isa::DynInst::jump(last.pc + 4, block[0].pc));
            }
            let mut insts = Vec::with_capacity(len);
            while insts.len() < len {
                insts.extend(block.iter().copied());
            }
            insts.truncate(len);
            let name = std::path::Path::new(path)
                .file_stem()
                .map_or_else(|| "asm".to_string(), |s| s.to_string_lossy().into_owned());
            let trace = sharing_trace::Trace::from_insts(name, insts);
            let sim = Simulator::new(cfg).expect("validated config");
            let _g = obs.map(|o| o.span(format!("simulate {}", trace.name()), "ssim", 0));
            let mut opts = RunOptions::new().engine(engine);
            if let Some(o) = obs {
                opts = opts.trace_to(o);
            }
            Ok(sim.run_with(&trace, opts).result)
        }
        Workload::ProfileFile(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::BadProfile(format!("{path}: {e}")))?;
            let profile: WorkloadProfile = sharing_json::from_str(&text)
                .map_err(|e| CliError::BadProfile(format!("{path}: {e}")))?;
            run_profile(&profile, cfg, len, seed, obs, engine, threads)
        }
        Workload::Extra(name) => {
            let profile =
                extra_profile(name).ok_or_else(|| CliError::UnknownBenchmark(name.clone()))?;
            run_profile(&profile, cfg, len, seed, obs, engine, threads)
        }
    }
}

/// Simulates one [`WorkloadProfile`] (from a `--profile` file or an
/// extra built-in), threading through the shared trace cache.
fn run_profile(
    profile: &WorkloadProfile,
    cfg: SimConfig,
    len: usize,
    seed: u64,
    obs: Option<&TraceBuffer>,
    engine: EngineKind,
    threads: Option<usize>,
) -> Result<sharing_core::SimResult, CliError> {
    let spec = TraceSpec::new(len, seed);
    if profile.threads > 1 {
        let trace = {
            let _g = obs.map(|o| o.span("trace-gen", "ssim", 0));
            TraceCache::global()
                .profile_threaded(profile, &spec)
                .map_err(CliError::BadProfile)?
        };
        let _g = obs.map(|o| o.span(format!("simulate {}", profile.name), "ssim", 0));
        let mut vm = VmSimulator::new(cfg)
            .expect("validated config")
            .with_engine(engine);
        if let Some(n) = threads {
            vm = vm.with_threads(n);
        }
        Ok(vm.run(&trace))
    } else {
        let trace = {
            let _g = obs.map(|o| o.span("trace-gen", "ssim", 0));
            TraceCache::global()
                .profile_single(profile, &spec)
                .map_err(CliError::BadProfile)?
        };
        let sim = Simulator::new(cfg).expect("validated config");
        let _g = obs.map(|o| o.span(format!("simulate {}", profile.name), "ssim", 0));
        let mut opts = RunOptions::new().engine(engine);
        if let Some(o) = obs {
            opts = opts.trace_to(o);
        }
        Ok(sim.run_with(&trace, opts).result)
    }
}

/// IPC per `(slices, banks)` grid point, as collected from a daemon sweep.
type SweepGrid = std::collections::HashMap<(usize, usize), f64>;

/// Submits the sweep to a running ssimd and collects the full grid.
/// Returns `(ipc by (slices, banks), cached point count)`.
fn sweep_via_daemon(addr: &str, args: &SweepArgs) -> Result<(SweepGrid, usize), CliError> {
    let mut client = sharing_server::Client::connect(addr)
        .map_err(|e| CliError::Server(format!("{addr}: {e}")))?;
    client
        .hello()
        .map_err(|e| CliError::Server(format!("{addr}: {e}")))?;
    let lines = client
        .submit_all(sharing_server::Job::Sweep(sharing_server::SweepJob {
            benchmark: args.benchmark,
            len: args.len,
            seed: args.seed,
        }))
        .map_err(|e| CliError::Server(e.to_string()))?;
    let last = lines.last().expect("sweep yields at least one line");
    if last.get("type").and_then(|v| v.as_str()) != Some("sweep_done") {
        let msg = last
            .get("error")
            .and_then(|v| v.as_str())
            .unwrap_or("sweep failed")
            .to_string();
        return Err(CliError::Server(msg));
    }
    let mut points = std::collections::HashMap::new();
    let mut cached = 0usize;
    for p in &lines[..lines.len() - 1] {
        let shape = p
            .get("shape")
            .ok_or_else(|| CliError::Server("sweep point missing shape".to_string()))?;
        let s = shape.get("slices").and_then(|v| v.as_int()).unwrap_or(0) as usize;
        let b = shape.get("l2_banks").and_then(|v| v.as_int()).unwrap_or(0) as usize;
        let ipc = p.get("ipc").and_then(|v| v.as_f64()).unwrap_or(0.0);
        if p.get("cached").and_then(|v| v.as_bool()) == Some(true) {
            cached += 1;
        }
        points.insert((s, b), ipc);
    }
    Ok((points, cached))
}

/// Writes a trace buffer as Chrome trace JSON.
fn save_trace(buf: &TraceBuffer, path: &str) -> Result<(), CliError> {
    buf.save_chrome(path)
        .map_err(|e| CliError::TraceOut(format!("{path}: {e}")))
}

/// Submits a job (optionally stamped with a distributed-trace id) and
/// returns the final reply line. A traced daemon streams `spans` lines
/// ahead of the result; they are acknowledged on stderr so stdout stays
/// the reply alone.
fn submit_final(
    client: &mut sharing_server::Client,
    job: sharing_server::Job,
    trace: Option<u64>,
) -> Result<sharing_json::Json, CliError> {
    let mut lines = client
        .submit_all_traced(job, trace)
        .map_err(|e| CliError::Server(e.to_string()))?;
    let reply = lines
        .pop()
        .ok_or_else(|| CliError::Server("job produced no reply".to_string()))?;
    if let Some(id) = trace {
        let spans = lines
            .iter()
            .filter(|l| l.get("type").and_then(|v| v.as_str()) == Some("spans"))
            .count();
        eprintln!("ssim submit: trace {id}: {spans} span batch(es) received");
    }
    Ok(reply)
}

/// Reads and validates a scenario JSON file.
fn load_scenario(path: &str) -> Result<Scenario, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError::BadScenario(format!("{path}: {e}")))?;
    let scenario =
        Scenario::parse(&text).map_err(|e| CliError::BadScenario(format!("{path}: {e}")))?;
    scenario
        .validate()
        .map_err(|e| CliError::BadScenario(format!("{path}: {e}")))?;
    Ok(scenario)
}

/// Runs `ssim submit --url ...`: the same actions as the TCP path, but
/// over the daemon's HTTP front door. Jobs go through `POST /jobs` and
/// a poll loop; the final reply lines come from `GET /jobs/<id>/raw`,
/// which returns the exact bytes the TCP protocol would have streamed.
fn http_submit(url: &str, args: &SubmitArgs) -> Result<String, CliError> {
    use sharing_json::Json;
    let (authority, base) =
        sharing_http::split_url(url).map_err(|e| CliError::Server(format!("{url}: {e}")))?;
    let call = |method: &str, path: &str, body: Option<&[u8]>| {
        let (status, bytes) =
            sharing_http::request(&authority, method, &format!("{base}{path}"), body)
                .map_err(|e| CliError::Server(format!("{url}: {e}")))?;
        Ok::<(u16, String), CliError>((status, String::from_utf8_lossy(&bytes).into_owned()))
    };
    let job = match &args.action {
        SubmitAction::Ping => {
            let (status, _body) = call("GET", "/health", None)?;
            return match status {
                200 => Ok(format!("{url}: pong")),
                503 => Err(CliError::Server(format!("{url}: draining"))),
                _ => Err(CliError::Server(format!("{url}: health answered {status}"))),
            };
        }
        SubmitAction::Stats => {
            let (status, body) = call("GET", "/status", None)?;
            if status != 200 {
                return Err(CliError::Server(format!("{url}: status answered {status}")));
            }
            let v = Json::parse(&body).map_err(|e| CliError::Server(format!("{url}: {e}")))?;
            return Ok(sharing_json::to_string_pretty(&v));
        }
        SubmitAction::Metrics => {
            // Prometheus text goes out verbatim, like the TCP path.
            let (status, body) = call("GET", "/metrics", None)?;
            if status != 200 {
                return Err(CliError::Server(format!(
                    "{url}: metrics answered {status}"
                )));
            }
            return Ok(body);
        }
        SubmitAction::Hello | SubmitAction::Shutdown => {
            return Err(CliError::ConflictingFlags(
                "--hello and --shutdown are TCP-only; use --addr".to_string(),
            ));
        }
        SubmitAction::Run {
            benchmark,
            slices,
            banks,
            len,
            seed,
        } => sharing_server::Job::Run(sharing_server::RunJob {
            workload: sharing_server::JobWorkload::Benchmark(*benchmark),
            slices: *slices,
            banks: *banks,
            len: *len,
            seed: *seed,
        }),
        SubmitAction::Dc {
            scenario_path,
            seed,
            mode,
        } => sharing_server::Job::Dc(Box::new(sharing_server::DcJob {
            scenario: load_scenario(scenario_path)?,
            seed: *seed,
            mode: *mode,
        })),
    };
    let env = sharing_server::Envelope {
        id: None,
        proto: Some(sharing_server::PROTO_VERSION),
        trace: args.trace,
        req: sharing_server::Request::Job(job),
    };
    let (status, body) = call("POST", "/jobs", Some(env.to_line().as_bytes()))?;
    if status != 202 {
        return Err(CliError::Server(format!(
            "{url}: submit answered {status}: {body}"
        )));
    }
    let accepted = Json::parse(&body).map_err(|e| CliError::Server(format!("{url}: {e}")))?;
    let id = accepted
        .get("id")
        .and_then(sharing_json::Json::as_int)
        .ok_or_else(|| CliError::Server(format!("{url}: submit reply lacks an id: {body}")))?;
    // Poll until the worker finishes; jobs here are bounded (a single
    // run or dc scenario), so a stuck daemon is the only way to spin.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(300);
    loop {
        let (status, body) = call("GET", &format!("/jobs/{id}"), None)?;
        if status != 200 {
            return Err(CliError::Server(format!(
                "{url}: poll answered {status}: {body}"
            )));
        }
        let v = Json::parse(&body).map_err(|e| CliError::Server(format!("{url}: {e}")))?;
        if v.get("status").and_then(sharing_json::Json::as_str) == Some("done") {
            break;
        }
        if std::time::Instant::now() > deadline {
            return Err(CliError::Server(format!("{url}: job {id} timed out")));
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let (status, raw) = call("GET", &format!("/jobs/{id}/raw"), None)?;
    if status != 200 {
        return Err(CliError::Server(format!(
            "{url}: raw fetch answered {status}"
        )));
    }
    let mut out = String::new();
    for line in raw.lines().filter(|l| !l.is_empty()) {
        let reply = Json::parse(line).map_err(|e| CliError::Server(format!("{url}: {e}")))?;
        if reply.get("ok").and_then(|v| v.as_bool()) == Some(false) {
            let msg = sharing_server::ServerError::from_reply(&reply)
                .map_or_else(|| "request failed".to_string(), |e| e.to_string());
            return Err(CliError::Server(msg));
        }
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&sharing_json::to_string_pretty(&reply));
    }
    Ok(out)
}

/// Runs `ssim dc`: one billing mode or the full comparison, with optional
/// CSV / event-log artifacts. Same scenario + same seed ⇒ byte-identical
/// output and files.
fn execute_dc(args: &DcArgs) -> Result<String, CliError> {
    if args.emit_example {
        return Ok(sharing_json::to_string_pretty(&Scenario::example_bursty()));
    }
    let path = args
        .scenario_path
        .as_ref()
        .expect("parse() requires a scenario unless --emit-example");
    let scenario = load_scenario(path)?;
    let sim = DcSim::new(scenario).map_err(CliError::BadScenario)?;

    // Logical-cycle tracing: spans carry simulated timestamps and
    // deterministic durations, so the outcome below is byte-identical
    // with or without `--trace-out`.
    let obs = args.trace_out.as_ref().map(|_| TraceBuffer::new());
    let mut out = String::new();
    let outcomes = match args.mode {
        Some(mode) => vec![sim.run_traced(mode, args.seed, obs.as_ref())],
        None => {
            let cmp = sim.run_comparison_traced(args.seed, obs.as_ref());
            out.push_str(&cmp.summary());
            out.push('\n');
            vec![cmp.sharing, cmp.fixed]
        }
    };
    for o in &outcomes {
        let _ = writeln!(out, "{}", o.summary());
        let _ = writeln!(out, "  {} event-log hash {}", o.mode.name(), o.log_hash());
    }
    if let Some(dir) = &args.out_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| CliError::BadScenario(format!("--out {dir}: {e}")))?;
        for o in &outcomes {
            let stem = format!("{}-{}", o.scenario, o.mode.name());
            let csv = std::path::Path::new(dir).join(format!("{stem}.csv"));
            let log = std::path::Path::new(dir).join(format!("{stem}.log"));
            std::fs::write(&csv, o.csv())
                .map_err(|e| CliError::BadScenario(format!("{}: {e}", csv.display())))?;
            std::fs::write(&log, &o.log)
                .map_err(|e| CliError::BadScenario(format!("{}: {e}", log.display())))?;
            let _ = writeln!(out, "wrote {} and {}", csv.display(), log.display());
        }
    }
    if let (Some(path), Some(buf)) = (&args.trace_out, &obs) {
        save_trace(buf, path)?;
        let _ = writeln!(out, "wrote trace {path} ({} spans)", buf.len());
    }
    Ok(out)
}

/// The worker daemons `ssim chaos` spawns and drives. Killing members
/// is part of the fault model (`sigkill_worker`); dropping the fleet
/// kills any survivors so a failed run leaves no stray daemons behind.
struct ChaosFleet {
    children: Vec<Option<std::process::Child>>,
    addrs: Vec<String>,
}

impl ChaosFleet {
    /// Spawns `workers` copies of this binary running `serve` and waits
    /// until every one answers pings.
    fn spawn(workers: usize, base_port: u16) -> Result<ChaosFleet, CliError> {
        let exe = std::env::current_exe()
            .map_err(|e| CliError::Server(format!("chaos: locating the ssim binary: {e}")))?;
        let mut fleet = ChaosFleet {
            children: Vec::new(),
            addrs: Vec::new(),
        };
        for i in 0..workers {
            let port = if base_port == 0 {
                free_port()?
            } else {
                base_port + u16::try_from(i).unwrap_or(0)
            };
            let addr = format!("127.0.0.1:{port}");
            let child = std::process::Command::new(&exe)
                .args(["serve", "--addr", &addr, "--workers", "2"])
                .stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::null())
                // Faults inject coordinator-side; the workers themselves
                // stay clean even if the parent environment carries a plan.
                .env_remove(sharing_chaos::PLAN_ENV)
                .env_remove(sharing_chaos::SCHEDULE_ENV)
                .spawn()
                .map_err(|e| CliError::Server(format!("chaos: spawning worker {addr}: {e}")))?;
            fleet.children.push(Some(child));
            fleet.addrs.push(addr);
        }
        fleet.wait_ready()?;
        Ok(fleet)
    }

    fn wait_ready(&self) -> Result<(), CliError> {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        for addr in &self.addrs {
            loop {
                let up = sharing_server::Client::connect_timeout(
                    addr.as_str(),
                    std::time::Duration::from_millis(200),
                )
                .and_then(|mut c| c.ping())
                .unwrap_or(false);
                if up {
                    break;
                }
                if std::time::Instant::now() > deadline {
                    return Err(CliError::Server(format!(
                        "chaos: worker {addr} never came up"
                    )));
                }
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
        }
        Ok(())
    }

    /// Workers still running.
    fn live(&self) -> usize {
        self.children.iter().filter(|c| c.is_some()).count()
    }

    /// SIGKILLs worker `i`. Idempotent: re-killing a dead worker is a
    /// no-op, matching a plan that names the same victim twice.
    fn kill(&mut self, i: usize) {
        if let Some(mut child) = self.children[i].take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    fn shutdown(&mut self) {
        for i in 0..self.children.len() {
            self.kill(i);
        }
    }
}

impl Drop for ChaosFleet {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds port 0 to learn a free port, then releases it for the worker.
fn free_port() -> Result<u16, CliError> {
    std::net::TcpListener::bind("127.0.0.1:0")
        .and_then(|l| l.local_addr())
        .map(|a| a.port())
        .map_err(|e| CliError::Server(format!("chaos: picking a port: {e}")))
}

/// The four-step job mix both chaos passes run: a full 72-point sweep
/// grid, the two extra seeded profiles, and a datacenter scenario.
fn chaos_mix(len: usize) -> Vec<(&'static str, sharing_server::Job)> {
    use sharing_server::{DcJob, Job, JobWorkload, RunJob, SweepJob};
    vec![
        (
            "sweep gcc",
            Job::Sweep(SweepJob {
                benchmark: Benchmark::Gcc,
                len,
                seed: 9,
            }),
        ),
        (
            "run bursty",
            Job::Run(RunJob {
                workload: JobWorkload::Profile(Box::new(sharing_trace::bursty_profile())),
                slices: 2,
                banks: 4,
                len,
                seed: 11,
            }),
        ),
        (
            "run phaseshift",
            Job::Run(RunJob {
                workload: JobWorkload::Profile(Box::new(sharing_trace::phase_shift_profile())),
                slices: 4,
                banks: 8,
                len,
                seed: 11,
            }),
        ),
        (
            "dc example",
            Job::Dc(Box::new(DcJob {
                scenario: Scenario::example_bursty(),
                seed: 7,
                mode: None,
            })),
        ),
    ]
}

/// After a kill, waits until the coordinator's health probes agree with
/// the fleet. This pins the dispatch picture at every mix step, so a
/// replay never races a probe into seeing (and counting) a dispatch to
/// a dead-but-not-yet-noticed worker.
fn wait_for_healthy(client: &mut sharing_server::Client, expect: usize) -> Result<(), CliError> {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    loop {
        let stats = client
            .stats()
            .map_err(|e| CliError::Server(format!("chaos: stats: {e}")))?;
        let healthy = stats
            .get("workers_healthy")
            .and_then(sharing_json::Json::as_int)
            .unwrap_or(-1);
        if healthy == expect as i128 {
            return Ok(());
        }
        if std::time::Instant::now() > deadline {
            return Err(CliError::Server(format!(
                "chaos: coordinator reports {healthy} healthy workers, expected {expect}"
            )));
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
}

/// One pass of the mix: a fresh in-process coordinator over the fleet,
/// the four jobs (killing workers where the armed plan says so when
/// `inject`), a stats snapshot, and a graceful drain under a watchdog.
/// Returns the reply lines (serialized) and the stats snapshot.
fn run_chaos_mix(
    fleet: &mut ChaosFleet,
    len: usize,
    inject: bool,
) -> Result<(Vec<String>, sharing_json::Json), CliError> {
    let cfg = sharing_server::ServerConfig {
        addr: "127.0.0.1:0".into(),
        remote_workers: fleet.addrs.clone(),
        // One extra attempt of slack over the default: the worst chaos
        // chain (drop, partition-refused reconnect, second drop) burns
        // three attempts on one point.
        dispatch_retries: 4,
        ..sharing_server::ServerConfig::default()
    };
    let handle = sharing_server::Server::start(cfg)
        .map_err(|e| CliError::Server(format!("chaos: coordinator: {e}")))?;
    let addr = handle.local_addr().to_string();
    let outcome = (|| {
        let mut client = sharing_server::Client::connect(&addr)
            .map_err(|e| CliError::Server(format!("chaos: {addr}: {e}")))?;
        client
            .hello()
            .map_err(|e| CliError::Server(format!("chaos: {addr}: {e}")))?;
        let mut lines = Vec::new();
        for (step, (label, job)) in chaos_mix(len).into_iter().enumerate() {
            if inject {
                let victim =
                    sharing_chaos::hooks().sigkill_step(step as u64 + 1, fleet.addrs.len());
                if let Some(victim) = victim {
                    fleet.kill(victim);
                    wait_for_healthy(&mut client, fleet.live())?;
                }
            }
            let replies = client
                .submit_all(job)
                .map_err(|e| CliError::Server(format!("chaos: {label}: {e}")))?;
            for r in &replies {
                if r.get("ok").and_then(|v| v.as_bool()) == Some(false) {
                    let msg = sharing_server::ServerError::from_reply(r)
                        .map_or_else(|| "job failed".to_string(), |e| e.to_string());
                    return Err(CliError::Server(format!("chaos: {label}: {msg}")));
                }
                lines.push(sharing_json::to_string(r));
            }
        }
        let stats = client
            .stats()
            .map_err(|e| CliError::Server(format!("chaos: stats: {e}")))?;
        Ok((lines, stats))
    })();
    // Drain the coordinator even when the mix failed; a drain that hangs
    // is an invariant violation of its own, hence the watchdog.
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        handle.stop();
        let _ = tx.send(());
    });
    if rx.recv_timeout(std::time::Duration::from_secs(60)).is_err() {
        return Err(CliError::Server(
            "chaos: invariant drain-terminates violated: coordinator stuck after 60s".to_string(),
        ));
    }
    outcome
}

/// Checks the sweep portion of a pass: exactly 72 distinct shapes and
/// one `sweep_done` marker — no point lost, none double-completed.
fn check_sweep_complete(lines: &[String]) -> Result<(), CliError> {
    use sharing_json::Json;
    let mut shapes = std::collections::HashSet::new();
    let mut done = 0usize;
    for line in lines {
        let v = Json::parse(line)
            .map_err(|e| CliError::Server(format!("chaos: unparseable reply line: {e}")))?;
        match v.get("type").and_then(Json::as_str) {
            Some("sweep_point") => {
                let shape = v
                    .get("shape")
                    .ok_or_else(|| CliError::Server("chaos: sweep point lacks a shape".into()))?;
                let s = shape.get("slices").and_then(Json::as_int).unwrap_or(-1);
                let b = shape.get("l2_banks").and_then(Json::as_int).unwrap_or(-1);
                if !shapes.insert((s, b)) {
                    return Err(CliError::Server(format!(
                        "chaos: invariant sweep-complete violated: shape {s}s/{b}b completed twice"
                    )));
                }
            }
            Some("sweep_done") => done += 1,
            _ => {}
        }
    }
    if shapes.len() != 72 || done != 1 {
        return Err(CliError::Server(format!(
            "chaos: invariant sweep-complete violated: {} unique shapes (want 72), {done} \
             sweep_done markers (want 1)",
            shapes.len()
        )));
    }
    Ok(())
}

/// Checks a pass's metrics: every submitted job completed, none
/// rejected or errored.
fn check_jobs_accounted(label: &str, stats: &sharing_json::Json) -> Result<(), CliError> {
    let stat = |key: &str| {
        stats
            .get(key)
            .and_then(sharing_json::Json::as_int)
            .unwrap_or(-1)
    };
    let (submitted, completed) = (stat("jobs_submitted"), stat("jobs_completed"));
    let (rejected, errors) = (stat("jobs_rejected"), stat("errors"));
    if submitted != 4 || completed != 4 || rejected != 0 || errors != 0 {
        return Err(CliError::Server(format!(
            "chaos: invariant jobs-accounted violated ({label}): submitted {submitted} \
             completed {completed} rejected {rejected} errors {errors} (want 4/4/0/0)"
        )));
    }
    Ok(())
}

/// Runs `ssim chaos`: spawn the fleet, run the mix fault-free, replay
/// it under the armed plan, and check every invariant.
fn execute_chaos(args: &ChaosArgs) -> Result<String, CliError> {
    let plan = match &args.plan_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::Server(format!("chaos: plan {path}: {e}")))?;
            sharing_chaos::FaultPlan::parse(&text)
                .map_err(|e| CliError::Server(format!("chaos: plan {path}: {e}")))?
        }
        None => sharing_chaos::FaultPlan::smoke(args.seed),
    };
    let hooks = sharing_chaos::hooks();
    hooks.disarm();
    let mut fleet = ChaosFleet::spawn(args.workers, args.base_port)?;
    let mut out = format!(
        "chaos: plan seed {} ({} rule(s)), {} worker daemon(s), len {}\n",
        plan.seed,
        plan.rules.len(),
        args.workers,
        args.len
    );
    let (baseline, base_stats) = run_chaos_mix(&mut fleet, args.len, false)?;
    let _ = writeln!(out, "chaos: baseline mix: {} reply lines", baseline.len());
    hooks.arm(plan);
    let chaos_pass = run_chaos_mix(&mut fleet, args.len, true);
    let schedule = hooks.schedule();
    let schedule_text = hooks.schedule_lines();
    hooks.disarm();
    let (chaos_lines, chaos_stats) = chaos_pass?;
    fleet.shutdown();

    let mut by_kind: Vec<(String, usize)> = Vec::new();
    for inj in &schedule {
        let name = inj.kind.to_string();
        match by_kind.iter_mut().find(|(k, _)| *k == name) {
            Some((_, c)) => *c += 1,
            None => by_kind.push((name, 1)),
        }
    }
    let breakdown = by_kind
        .iter()
        .map(|(k, c)| format!("{k} {c}"))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(
        out,
        "chaos: chaos mix: {} reply lines, {} fault(s) injected ({breakdown})",
        chaos_lines.len(),
        schedule.len()
    );

    if chaos_lines != baseline {
        let first = baseline
            .iter()
            .zip(&chaos_lines)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| baseline.len().min(chaos_lines.len()));
        return Err(CliError::Server(format!(
            "chaos: invariant results-identical violated: {} baseline vs {} chaos lines, first \
             difference at line {first}",
            baseline.len(),
            chaos_lines.len()
        )));
    }
    let _ = writeln!(
        out,
        "chaos: invariant results-identical: OK ({} lines byte-identical)",
        chaos_lines.len()
    );
    check_sweep_complete(&chaos_lines)?;
    let _ = writeln!(
        out,
        "chaos: invariant sweep-complete: OK (72 unique shapes)"
    );
    check_jobs_accounted("baseline", &base_stats)?;
    check_jobs_accounted("chaos", &chaos_stats)?;
    let retries = chaos_stats
        .get("dispatch_retries")
        .and_then(sharing_json::Json::as_int)
        .unwrap_or(0);
    let _ = writeln!(
        out,
        "chaos: invariant jobs-accounted: OK (4 jobs per pass, {retries} dispatch retries under \
         chaos)"
    );
    let _ = writeln!(out, "chaos: invariant drain-terminates: OK (both passes)");
    if let Some(path) = &args.schedule_out {
        std::fs::write(path, &schedule_text)
            .map_err(|e| CliError::Server(format!("chaos: schedule {path}: {e}")))?;
        let _ = writeln!(
            out,
            "chaos: wrote schedule {path} ({} line(s))",
            schedule.len()
        );
    }
    out.push_str("chaos: all invariants held\n");
    Ok(out)
}

/// Executes a parsed command, returning its stdout payload.
///
/// # Errors
///
/// Returns a [`CliError`] on config problems; simulation itself is total.
pub fn execute(cmd: &Command) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(usage()),
        Command::List => {
            let mut out = String::from("available benchmarks (paper §5.2 suite):\n");
            for b in ALL_BENCHMARKS {
                let kind = if b.is_parsec() {
                    "PARSEC, 4 threads"
                } else {
                    "single-thread"
                };
                out.push_str(&format!("  {:<12} {kind}\n", b.name()));
            }
            out.push_str("\nextra seeded profiles (run/submit/chaos mixes):\n");
            for name in EXTRA_PROFILES {
                let p = extra_profile(name).expect("registered extra profile");
                let kind = if p.threads > 1 {
                    format!("{} threads", p.threads)
                } else {
                    "single-thread".to_string()
                };
                out.push_str(&format!("  {name:<12} {kind}\n"));
            }
            Ok(out)
        }
        Command::EmitConfig => {
            let cfg = SimConfig::builder()
                .build()
                .map_err(|e| CliError::BadSimConfig(e.to_string()))?;
            Ok(sharing_json::to_string_pretty(&cfg))
        }
        Command::Run(args) => {
            let obs = args.trace_out.as_ref().map(|_| TraceBuffer::new());
            let cfg = {
                let _g = obs.as_ref().map(|o| o.span("load-config", "ssim", 0));
                load_config(args)?
            };
            let result = run_workload(
                &args.workload,
                cfg,
                args.len,
                args.seed,
                obs.as_ref(),
                args.engine,
                args.threads,
            )?;
            let mut out = if args.json {
                sharing_json::to_string_pretty(&result)
            } else {
                let s = &result.stalls;
                format!(
                    "{}\nstall cycles: rob {} | window {} | lsq {} | mshr {} | store-buffer {} \
                     | freelist {} | mispredict {} | icache {}\nnetwork: {} operand msgs \
                     ({} remote operands, {} LRF copy hits), {} LS-sort msgs, {} rename bcasts",
                    result.summary(),
                    s.rob_full,
                    s.window_full,
                    s.lsq_full,
                    s.mshr_full,
                    s.store_buffer_full,
                    s.freelist_empty,
                    s.mispredict,
                    s.icache,
                    result.operand_net.messages,
                    result.remote_operand_requests,
                    result.lrf_copy_hits,
                    result.ls_sort_messages,
                    result.rename_broadcasts,
                )
            };
            if let (Some(path), Some(buf)) = (&args.trace_out, &obs) {
                save_trace(buf, path)?;
                if args.json {
                    // Keep stdout pure JSON for machine consumers.
                    eprintln!("ssim: wrote trace {path} ({} spans)", buf.len());
                } else {
                    let _ = write!(out, "\nwrote trace {path} ({} spans)", buf.len());
                }
            }
            Ok(out)
        }
        Command::Dc(args) => execute_dc(args),
        Command::Chaos(args) => execute_chaos(args),
        Command::Profile(args) => execute_profile(args),
        Command::TracePack(args) => execute_trace_pack(args),
        Command::Serve(args) => {
            let mut cfg = sharing_server::ServerConfig {
                addr: args.addr.clone(),
                queue_capacity: args.queue,
                cache_capacity: args.cache,
                cache_path: args.cache_file.clone(),
                trace_path: args.trace_out.clone(),
                remote_workers: args.workers_remote.clone(),
                dispatch_retries: args.retries,
                job_timeout_ms: args.job_timeout_ms,
                http_addr: args.http.clone(),
                ..sharing_server::ServerConfig::default()
            };
            if let Some(w) = args.workers {
                cfg.workers = w;
            }
            // The pidfile is claimed before the sockets bind, so two
            // daemons racing on one pidfile cannot both come up; its
            // guard removes the file when this arm returns.
            let _pidfile = match &args.pidfile {
                Some(path) => Some(
                    sharing_http::Pidfile::create(path)
                        .map_err(|e| CliError::Server(format!("pidfile {path}: {e}")))?,
                ),
                None => None,
            };
            sharing_http::install_termination_handler()
                .map_err(|e| CliError::Server(format!("signal handlers: {e}")))?;
            // A daemon launched with SSIM_CHAOS_PLAN set arms itself, so
            // whole fleets can run under one plan without code changes.
            match sharing_chaos::hooks().arm_from_env() {
                Ok(true) => eprintln!(
                    "ssim serve: chaos plan armed from ${}",
                    sharing_chaos::PLAN_ENV
                ),
                Ok(false) => {}
                Err(e) => return Err(CliError::Server(e)),
            }
            let handle =
                sharing_server::Server::start(cfg).map_err(|e| CliError::Server(e.to_string()))?;
            if args.workers_remote.is_empty() {
                eprintln!(
                    "ssim serve: listening on {} (stop with `ssim submit --shutdown`)",
                    handle.local_addr()
                );
            } else {
                eprintln!(
                    "ssim serve: coordinating {} worker(s) on {} (stop with `ssim submit \
                     --shutdown`)",
                    args.workers_remote.len(),
                    handle.local_addr()
                );
            }
            if let Some(http) = handle.http_addr() {
                eprintln!("ssim serve: http listening on {http}");
            }
            // Poll rather than block in join(): a client `shutdown`
            // flips is_stopped(), SIGTERM/SIGINT flips the termination
            // flag, and either way the same graceful drain runs.
            while !handle.is_stopped() && !sharing_http::termination_requested() {
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            if sharing_http::termination_requested() {
                eprintln!("ssim serve: termination signal received, draining");
            }
            handle.shutdown();
            handle.join();
            sharing_chaos::hooks().write_schedule_from_env();
            Ok("ssim serve: drained and stopped".to_string())
        }
        Command::Submit(args) => {
            if let Some(url) = &args.url {
                return http_submit(url, args);
            }
            let mut client = sharing_server::Client::connect(&args.addr)
                .map_err(|e| CliError::Server(format!("{}: {e}", args.addr)))?;
            let reply = match &args.action {
                SubmitAction::Ping => {
                    let up = client.ping().map_err(|e| CliError::Server(e.to_string()))?;
                    return if up {
                        Ok(format!("{}: pong", args.addr))
                    } else {
                        Err(CliError::Server(format!("{}: unexpected reply", args.addr)))
                    };
                }
                SubmitAction::Hello => {
                    let proto = client
                        .hello()
                        .map_err(|e| CliError::Server(e.to_string()))?;
                    return Ok(format!(
                        "{}: speaking protocol v{proto} (client v{})",
                        args.addr,
                        sharing_server::PROTO_VERSION
                    ));
                }
                SubmitAction::Stats => client
                    .stats()
                    .map_err(|e| CliError::Server(e.to_string()))?,
                SubmitAction::Metrics => {
                    // Prometheus text exposition goes out verbatim so it
                    // can be piped straight to a scrape file.
                    return client
                        .metrics()
                        .map_err(|e| CliError::Server(e.to_string()));
                }
                SubmitAction::Shutdown => client
                    .shutdown()
                    .map_err(|e| CliError::Server(e.to_string()))?,
                SubmitAction::Run {
                    benchmark,
                    slices,
                    banks,
                    len,
                    seed,
                } => submit_final(
                    &mut client,
                    sharing_server::Job::Run(sharing_server::RunJob {
                        workload: sharing_server::JobWorkload::Benchmark(*benchmark),
                        slices: *slices,
                        banks: *banks,
                        len: *len,
                        seed: *seed,
                    }),
                    args.trace,
                )?,
                SubmitAction::Dc {
                    scenario_path,
                    seed,
                    mode,
                } => {
                    let scenario = load_scenario(scenario_path)?;
                    submit_final(
                        &mut client,
                        sharing_server::Job::Dc(Box::new(sharing_server::DcJob {
                            scenario,
                            seed: *seed,
                            mode: *mode,
                        })),
                        args.trace,
                    )?
                }
            };
            if reply.get("ok").and_then(|v| v.as_bool()) == Some(false) {
                let msg = sharing_server::ServerError::from_reply(&reply)
                    .map_or_else(|| "request failed".to_string(), |e| e.to_string());
                return Err(CliError::Server(msg));
            }
            Ok(sharing_json::to_string_pretty(&reply))
        }
        Command::Sweep(args) => {
            // With --daemon, all 72 points come from a running ssimd (and
            // its shared result cache); otherwise they are simulated
            // in-process: the trace is generated once (shared through the
            // process-wide TraceCache) and the grid runs on a `--jobs`-
            // sized worker pool. Results are collected by point index, so
            // the rendered table is byte-identical no matter how many
            // workers ran — or whether the points came from a daemon.
            let obs = args.trace_out.as_ref().map(|_| TraceBuffer::new());
            let remote = match &args.daemon {
                Some(addr) => {
                    let _g = obs.as_ref().map(|o| {
                        o.span(format!("sweep {} via {addr}", args.benchmark), "sweep", 0)
                    });
                    Some(sweep_via_daemon(addr, args)?)
                }
                None => None,
            };
            let banks = [0usize, 1, 2, 4, 8, 16, 32, 64, 128];
            let grid: Vec<(usize, usize)> = (1..=8)
                .flat_map(|s| banks.iter().map(move |&b| (s, b)))
                .collect();
            let ipcs: Vec<f64> = match &remote {
                Some(points) => grid
                    .iter()
                    .map(|&(s, b)| {
                        points.0.get(&(s, b)).copied().ok_or_else(|| {
                            CliError::Server(format!("daemon sweep missing shape {s}s/{b}b"))
                        })
                    })
                    .collect::<Result<_, _>>()?,
                None => {
                    let jobs = sharing_core::par::resolve_jobs(args.jobs);
                    sharing_core::par::map_indexed(jobs, &grid, |_, &(s, b)| {
                        let cfg = SimConfig::with_shape(s, b)
                            .map_err(|e| CliError::BadSimConfig(e.to_string()))?;
                        let t0 = std::time::Instant::now();
                        let mut guard = obs
                            .as_ref()
                            .map(|o| o.span(format!("point {s}s/{b}b"), "sweep", 0));
                        let r = run_one(
                            args.benchmark,
                            cfg,
                            args.len,
                            args.seed,
                            None,
                            EngineKind::default(),
                            None,
                        );
                        if let Some(g) = guard.as_mut() {
                            use sharing_json::Json;
                            let dt = t0.elapsed().as_secs_f64().max(1e-9);
                            g.add_arg("slices", Json::Int(s as i128));
                            g.add_arg("l2_banks", Json::Int(b as i128));
                            g.add_arg("ipc", Json::Float(r.ipc()));
                            g.add_arg("cycles", Json::Int(i128::from(r.cycles)));
                            g.add_arg("cycles_per_sec", Json::Float(r.cycles as f64 / dt));
                        }
                        Ok(r.ipc())
                    })
                    .into_iter()
                    .collect::<Result<_, _>>()?
                }
            };
            let mut out = format!(
                "{}: IPC over the paper's configuration grid (len {}, seed {})\n\n",
                args.benchmark, args.len, args.seed
            );
            out.push_str("slices\\banks");
            for b in banks {
                out.push_str(&format!("{:>7}", b * 64));
            }
            out.push('\n');
            for (i, ipc) in ipcs.iter().enumerate() {
                if i % banks.len() == 0 {
                    out.push_str(&format!("{:>12}", grid[i].0));
                }
                out.push_str(&format!("{ipc:>7.3}"));
                if (i + 1) % banks.len() == 0 {
                    out.push('\n');
                }
            }
            out.push_str("\n(columns are L2 KB: 0, 64, 128, 256, 512, 1024, 2048, 4096, 8192)\n");
            if let Some(path) = &args.csv_out {
                let mut csv = String::from("benchmark,slices,l2_banks,l2_kb,ipc\n");
                for (&(s, b), ipc) in grid.iter().zip(&ipcs) {
                    let _ = writeln!(csv, "{},{s},{b},{},{ipc:.6}", args.benchmark, b * 64);
                }
                std::fs::write(path, csv).map_err(|e| CliError::CsvOut(format!("{path}: {e}")))?;
                let _ = writeln!(out, "wrote csv {path} ({} points)", grid.len());
            }
            if let (Some(addr), Some(points)) = (&args.daemon, &remote) {
                let _ = writeln!(
                    out,
                    "served by ssimd at {addr}: {} of 72 points from its cache",
                    points.1
                );
            }
            if let (Some(path), Some(buf)) = (&args.trace_out, &obs) {
                save_trace(buf, path)?;
                let _ = writeln!(out, "wrote trace {path} ({} spans)", buf.len());
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| (*x).to_string()).collect()
    }

    #[test]
    fn parses_run_with_flags() {
        let cmd = parse(&s(&[
            "run",
            "--benchmark",
            "mcf",
            "--slices",
            "4",
            "--banks",
            "8",
            "--len",
            "1000",
            "--seed",
            "7",
            "--json",
        ]))
        .unwrap();
        match cmd {
            Command::Run(a) => {
                assert_eq!(a.workload, Workload::Benchmark(Benchmark::Mcf));
                assert_eq!(a.slices, 4);
                assert_eq!(a.banks, 8);
                assert_eq!(a.len, 1000);
                assert_eq!(a.seed, 7);
                assert!(a.json);
            }
            other => panic!("expected run, got {other:?}"),
        }
    }

    #[test]
    fn run_requires_benchmark() {
        assert_eq!(
            parse(&s(&["run", "--slices", "2"])),
            Err(CliError::MissingValue(
                "--benchmark, --profile or --asm".to_string()
            ))
        );
    }

    #[test]
    fn rejects_unknown_benchmark_and_flags() {
        assert!(matches!(
            parse(&s(&["run", "--benchmark", "doom"])),
            Err(CliError::UnknownBenchmark(_))
        ));
        assert!(matches!(
            parse(&s(&["run", "--benchmark", "gcc", "--turbo"])),
            Err(CliError::UnknownFlag(_))
        ));
        assert!(matches!(
            parse(&s(&["explode"])),
            Err(CliError::UnknownCommand(_))
        ));
        assert_eq!(parse(&[]), Err(CliError::MissingCommand));
    }

    #[test]
    fn help_and_list_and_config_parse() {
        assert_eq!(parse(&s(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse(&s(&["list"])).unwrap(), Command::List);
        assert_eq!(parse(&s(&["config"])).unwrap(), Command::EmitConfig);
    }

    #[test]
    fn list_names_every_benchmark() {
        let out = execute(&Command::List).unwrap();
        for b in ALL_BENCHMARKS {
            assert!(out.contains(b.name()), "missing {b}");
        }
    }

    #[test]
    fn list_names_every_extra_profile() {
        let out = execute(&Command::List).unwrap();
        for name in EXTRA_PROFILES {
            assert!(out.contains(name), "missing extra profile {name}");
        }
    }

    #[test]
    fn run_benchmark_resolves_extra_profiles() {
        let cmd = parse(&s(&["run", "--benchmark", "bursty"])).unwrap();
        match cmd {
            Command::Run(a) => assert_eq!(a.workload, Workload::Extra("bursty".to_string())),
            other => panic!("expected run, got {other:?}"),
        }
        // A made-up name still fails cleanly after both lookups miss.
        assert!(matches!(
            parse(&s(&["run", "--benchmark", "quiescent"])),
            Err(CliError::UnknownBenchmark(_))
        ));
    }

    #[test]
    fn parses_chaos_flags() {
        let cmd = parse(&s(&[
            "chaos",
            "--seed",
            "42",
            "--workers",
            "3",
            "--base-port",
            "7100",
            "--len",
            "500",
            "--schedule-out",
            "sched.txt",
        ]))
        .unwrap();
        match cmd {
            Command::Chaos(a) => {
                assert_eq!(a.plan_path, None);
                assert_eq!(a.seed, 42);
                assert_eq!(a.workers, 3);
                assert_eq!(a.base_port, 7100);
                assert_eq!(a.len, 500);
                assert_eq!(a.schedule_out, Some("sched.txt".to_string()));
            }
            other => panic!("expected chaos, got {other:?}"),
        }
        match parse(&s(&["chaos", "--plan", "plan.json"])).unwrap() {
            Command::Chaos(a) => {
                assert_eq!(a.plan_path, Some("plan.json".to_string()));
                assert_eq!(a.workers, 2, "default fleet size");
            }
            other => panic!("expected chaos, got {other:?}"),
        }
        assert_eq!(
            parse(&s(&["chaos", "--workers", "0"])),
            Err(CliError::BadValue("--workers".to_string(), "0".to_string()))
        );
    }

    #[test]
    fn bursty_profile_runs_end_to_end() {
        let out = execute(&Command::Run(RunArgs {
            workload: Workload::Extra("bursty".to_string()),
            slices: 2,
            banks: 4,
            len: 500,
            seed: 3,
            config_path: None,
            json: true,
            trace_out: None,
            engine: EngineKind::default(),
            threads: None,
        }))
        .unwrap();
        let v = sharing_json::Json::parse(&out).unwrap();
        assert!(v.get("cycles").is_some(), "no cycles in {out}");
    }

    #[test]
    fn emitted_config_round_trips_through_run() {
        let json = execute(&Command::EmitConfig).unwrap();
        let dir = std::env::temp_dir().join("ssim-test-config.json");
        std::fs::write(&dir, &json).unwrap();
        let cmd = parse(&s(&[
            "run",
            "--benchmark",
            "hmmer",
            "--len",
            "800",
            "--config",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("IPC"), "report should mention IPC: {out}");
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    fn run_json_output_is_parseable() {
        let cmd = parse(&s(&[
            "run",
            "--benchmark",
            "gobmk",
            "--len",
            "800",
            "--json",
        ]))
        .unwrap();
        let out = execute(&cmd).unwrap();
        let v = sharing_json::Json::parse(&out).unwrap();
        assert_eq!(v.get("instructions").and_then(|x| x.as_int()), Some(800));
    }

    #[test]
    fn sharded_engine_flag_parses_and_matches_event_output() {
        let cmd = |engine: &[&str]| {
            let mut argv = vec!["run", "--benchmark", "dedup", "--len", "600", "--json"];
            argv.extend_from_slice(engine);
            execute(&parse(&s(&argv)).unwrap()).unwrap()
        };
        let event = cmd(&["--engine", "event"]);
        for threads in ["1", "2", "4"] {
            let sharded = cmd(&["--engine", "sharded", "--threads", threads]);
            assert_eq!(event, sharded, "--threads {threads} changed the output");
        }
        assert_eq!(
            parse(&s(&["run", "--benchmark", "gcc", "--threads", "0"])),
            Err(CliError::BadValue("--threads".to_string(), "0".to_string()))
        );
    }

    #[test]
    fn bad_config_file_reports_cleanly() {
        let cmd = Command::Run(RunArgs {
            workload: Workload::Benchmark(Benchmark::Gcc),
            slices: 1,
            banks: 1,
            len: 100,
            seed: 1,
            config_path: Some("/nonexistent/ssim.json".to_string()),
            json: false,
            trace_out: None,
            engine: EngineKind::default(),
            threads: None,
        });
        assert!(matches!(execute(&cmd), Err(CliError::BadConfig(_))));
    }

    #[test]
    fn run_trace_out_writes_parseable_chrome_trace() {
        let path = std::env::temp_dir().join("ssim-test-run-trace.json");
        let cmd = parse(&s(&[
            "run",
            "--benchmark",
            "gcc",
            "--len",
            "600",
            "--trace-out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("wrote trace"), "{out}");

        let text = std::fs::read_to_string(&path).unwrap();
        let v = sharing_json::Json::parse(&text).expect("trace must be valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(|e| e.as_arr())
            .expect("traceEvents array");
        let spans: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .collect();
        assert!(!spans.is_empty(), "expected at least one span");
        for e in &spans {
            let ts = e.get("ts").and_then(|x| x.as_int()).expect("ts");
            let dur = e.get("dur").and_then(|x| x.as_int()).expect("dur");
            assert!(ts >= 0, "negative ts in {e}");
            assert!(dur >= 0, "negative dur in {e}");
        }
        let names: Vec<&str> = spans
            .iter()
            .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
            .collect();
        assert!(names.iter().any(|n| n.contains("trace-gen")), "{names:?}");
        assert!(names.iter().any(|n| n.contains("simulate")), "{names:?}");

        let _ = std::fs::remove_file(&path);
    }
}

#[cfg(test)]
mod server_tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| (*x).to_string()).collect()
    }

    #[test]
    fn parses_serve_and_submit() {
        let cmd = parse(&s(&[
            "serve",
            "--addr",
            "0.0.0.0:7777",
            "--workers",
            "2",
            "--queue",
            "8",
            "--cache",
            "16",
            "--cache-file",
            "/tmp/ssimd.cache",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve(ServeArgs {
                addr: "0.0.0.0:7777".to_string(),
                workers: Some(2),
                queue: 8,
                cache: 16,
                cache_file: Some("/tmp/ssimd.cache".to_string()),
                trace_out: None,
                workers_remote: vec![],
                retries: 3,
                job_timeout_ms: 30_000,
                http: None,
                pidfile: None,
            })
        );

        // Coordinator mode: `--worker` repeats, retry/timeout knobs parse.
        let cmd = parse(&s(&[
            "serve",
            "--worker",
            "host-a:42014",
            "--worker",
            "host-b:42014",
            "--retries",
            "5",
            "--job-timeout-ms",
            "1500",
        ]))
        .unwrap();
        match cmd {
            Command::Serve(a) => {
                assert_eq!(a.workers_remote, vec!["host-a:42014", "host-b:42014"]);
                assert_eq!(a.retries, 5);
                assert_eq!(a.job_timeout_ms, 1500);
            }
            other => panic!("expected serve, got {other:?}"),
        }

        assert!(matches!(
            parse(&s(&["submit", "--hello"])).unwrap(),
            Command::Submit(SubmitArgs {
                action: SubmitAction::Hello,
                ..
            })
        ));

        let cmd = parse(&s(&["submit", "--benchmark", "mcf", "--slices", "4"])).unwrap();
        match cmd {
            Command::Submit(a) => {
                assert_eq!(
                    a.addr,
                    format!("127.0.0.1:{}", sharing_server::DEFAULT_PORT)
                );
                assert_eq!(
                    a.action,
                    SubmitAction::Run {
                        benchmark: Benchmark::Mcf,
                        slices: 4,
                        banks: 2,
                        len: 60_000,
                        seed: 0xA5_2014,
                    }
                );
            }
            other => panic!("expected submit, got {other:?}"),
        }

        assert!(matches!(
            parse(&s(&["submit", "--stats"])).unwrap(),
            Command::Submit(SubmitArgs {
                action: SubmitAction::Stats,
                ..
            })
        ));
        assert!(matches!(
            parse(&s(&["submit"])),
            Err(CliError::MissingValue(_))
        ));
        assert!(matches!(
            parse(&s(&["submit", "--benchmark", "gcc", "--shutdown"])),
            Err(CliError::ConflictingFlags(_))
        ));
    }

    #[test]
    fn parses_sweep_daemon_and_submit_dc() {
        let cmd = parse(&s(&["sweep", "--benchmark", "mcf", "--daemon", "h:1"])).unwrap();
        assert_eq!(
            cmd,
            Command::Sweep(SweepArgs {
                benchmark: Benchmark::Mcf,
                len: 30_000,
                seed: 0xA5_2014,
                daemon: Some("h:1".to_string()),
                jobs: None,
                csv_out: None,
                trace_out: None,
            })
        );

        let cmd = parse(&s(&[
            "submit", "--dc", "sc.json", "--seed", "9", "--mode", "sharing",
        ]))
        .unwrap();
        match cmd {
            Command::Submit(a) => assert_eq!(
                a.action,
                SubmitAction::Dc {
                    scenario_path: "sc.json".to_string(),
                    seed: 9,
                    mode: Some(BillingMode::Sharing),
                }
            ),
            other => panic!("expected submit, got {other:?}"),
        }
        assert!(matches!(
            parse(&s(&["submit", "--dc", "sc.json", "--ping"])),
            Err(CliError::ConflictingFlags(_))
        ));
        assert!(matches!(
            parse(&s(&["submit", "--dc", "sc.json", "--mode", "weird"])),
            Err(CliError::BadValue(..))
        ));
    }

    #[test]
    fn sweep_via_daemon_matches_local_sweep() {
        let handle = sharing_server::Server::start(sharing_server::ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 8,
            cache_capacity: 256,
            ..sharing_server::ServerConfig::default()
        })
        .unwrap();
        let addr = handle.local_addr().to_string();

        let local = execute(&Command::Sweep(SweepArgs {
            benchmark: Benchmark::Hmmer,
            len: 300,
            seed: 5,
            daemon: None,
            jobs: None,
            csv_out: None,
            trace_out: None,
        }))
        .unwrap();
        let remote = execute(&Command::Sweep(SweepArgs {
            benchmark: Benchmark::Hmmer,
            len: 300,
            seed: 5,
            daemon: Some(addr.clone()),
            jobs: None,
            csv_out: None,
            trace_out: None,
        }))
        .unwrap();
        // Same table; the daemon run appends a provenance line.
        assert!(
            remote.starts_with(&local),
            "daemon sweep table must match local:\n{remote}"
        );
        assert!(remote.contains(&format!("served by ssimd at {addr}")));

        // A second remote sweep is fully cache-fed.
        let again = execute(&Command::Sweep(SweepArgs {
            benchmark: Benchmark::Hmmer,
            len: 300,
            seed: 5,
            daemon: Some(addr),
            jobs: None,
            csv_out: None,
            trace_out: None,
        }))
        .unwrap();
        assert!(again.contains("72 of 72 points from its cache"), "{again}");

        handle.stop();
    }

    #[test]
    fn parses_sweep_jobs_and_csv_out() {
        let cmd = parse(&s(&[
            "sweep",
            "--benchmark",
            "gcc",
            "--jobs",
            "4",
            "--csv-out",
            "grid.csv",
        ]))
        .unwrap();
        match cmd {
            Command::Sweep(a) => {
                assert_eq!(a.jobs, Some(4));
                assert_eq!(a.csv_out.as_deref(), Some("grid.csv"));
            }
            other => panic!("expected sweep, got {other:?}"),
        }
        assert!(matches!(
            parse(&s(&["sweep", "--benchmark", "gcc", "--jobs", "x"])),
            Err(CliError::BadValue(..))
        ));
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_sequential() {
        for seed in [5u64, 11] {
            let run = |jobs: usize| {
                execute(&Command::Sweep(SweepArgs {
                    benchmark: Benchmark::Hmmer,
                    len: 300,
                    seed,
                    daemon: None,
                    jobs: Some(jobs),
                    csv_out: None,
                    trace_out: None,
                }))
                .unwrap()
            };
            assert_eq!(run(1), run(4), "seed {seed}: --jobs must not change a byte");
        }
    }

    #[test]
    fn sweep_csv_out_writes_the_grid() {
        let dir = std::env::temp_dir().join(format!("ssim-csv-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grid.csv");
        let out = execute(&Command::Sweep(SweepArgs {
            benchmark: Benchmark::Hmmer,
            len: 300,
            seed: 5,
            daemon: None,
            jobs: Some(2),
            csv_out: Some(path.to_string_lossy().into_owned()),
            trace_out: None,
        }))
        .unwrap();
        assert!(out.contains("wrote csv"), "{out}");
        let csv = std::fs::read_to_string(&path).unwrap();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("benchmark,slices,l2_banks,l2_kb,ipc"));
        let rows: Vec<&str> = lines.collect();
        assert_eq!(rows.len(), 72, "one row per grid point");
        assert!(rows[0].starts_with("hmmer,1,0,0,"), "{}", rows[0]);
        assert!(rows[71].starts_with("hmmer,8,128,8192,"), "{}", rows[71]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn submit_round_trips_against_live_daemon() {
        let handle = sharing_server::Server::start(sharing_server::ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_capacity: 4,
            cache_capacity: 16,
            ..sharing_server::ServerConfig::default()
        })
        .unwrap();
        let addr = handle.local_addr().to_string();

        let out = execute(&Command::Submit(SubmitArgs {
            addr: addr.clone(),
            url: None,
            trace: None,
            action: SubmitAction::Ping,
        }))
        .unwrap();
        assert!(out.ends_with("pong"), "{out}");

        let out = execute(&Command::Submit(SubmitArgs {
            addr: addr.clone(),
            url: None,
            trace: None,
            action: SubmitAction::Hello,
        }))
        .unwrap();
        assert!(
            out.contains(&format!("protocol v{}", sharing_server::PROTO_VERSION)),
            "{out}"
        );

        let out = execute(&Command::Submit(SubmitArgs {
            addr: addr.clone(),
            url: None,
            trace: None,
            action: SubmitAction::Run {
                benchmark: Benchmark::Gcc,
                slices: 2,
                banks: 2,
                len: 500,
                seed: 3,
            },
        }))
        .unwrap();
        let v = sharing_json::Json::parse(&out).unwrap();
        assert_eq!(v.get("ok").and_then(|x| x.as_bool()), Some(true));
        assert_eq!(
            v.get("result")
                .and_then(|r| r.get("instructions"))
                .and_then(|x| x.as_int()),
            Some(500)
        );

        let out = execute(&Command::Submit(SubmitArgs {
            addr: addr.clone(),
            url: None,
            trace: None,
            action: SubmitAction::Stats,
        }))
        .unwrap();
        let v = sharing_json::Json::parse(&out).unwrap();
        assert!(v.get("jobs_completed").and_then(|x| x.as_int()).is_some());

        let out = execute(&Command::Submit(SubmitArgs {
            addr: addr.clone(),
            url: None,
            trace: None,
            action: SubmitAction::Shutdown,
        }))
        .unwrap();
        assert!(out.contains("shutdown"), "{out}");
        handle.join();

        // With the daemon gone, submit reports a clean server error.
        assert!(matches!(
            execute(&Command::Submit(SubmitArgs {
                addr,
                url: None,
                trace: None,
                action: SubmitAction::Ping,
            })),
            Err(CliError::Server(_))
        ));
    }
}

#[cfg(test)]
mod dc_tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| (*x).to_string()).collect()
    }

    fn write_small_scenario(name: &str) -> std::path::PathBuf {
        let mut sc = Scenario::example_bursty();
        sc.name = name.to_string();
        sc.chips = 2;
        sc.epochs = 8;
        sc.epoch_cycles = 10_000;
        let path = std::env::temp_dir().join(format!("ssim-test-{name}.json"));
        std::fs::write(&path, sharing_json::to_string_pretty(&sc)).unwrap();
        path
    }

    #[test]
    fn parses_dc_flags_and_requirements() {
        let cmd = parse(&s(&[
            "dc",
            "--scenario",
            "sc.json",
            "--seed",
            "7",
            "--mode",
            "fixed",
            "--out",
            "/tmp/dc",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Dc(DcArgs {
                scenario_path: Some("sc.json".to_string()),
                seed: 7,
                mode: Some(BillingMode::Fixed),
                out_dir: Some("/tmp/dc".to_string()),
                emit_example: false,
                trace_out: None,
            })
        );
        assert!(matches!(parse(&s(&["dc"])), Err(CliError::MissingValue(_))));
        assert!(matches!(
            parse(&s(&["dc", "--scenario", "a", "--emit-example"])),
            Err(CliError::ConflictingFlags(_))
        ));
        assert!(matches!(
            parse(&s(&["dc", "--scenario", "a", "--mode", "spot"])),
            Err(CliError::BadValue(..))
        ));
    }

    #[test]
    fn emit_example_is_a_valid_scenario() {
        let out = execute(&parse(&s(&["dc", "--emit-example"])).unwrap()).unwrap();
        let sc = Scenario::parse(&out).unwrap();
        assert_eq!(sc, Scenario::example_bursty());
        sc.validate().unwrap();
    }

    #[test]
    fn dc_run_is_byte_identical_for_the_same_seed() {
        let scenario = write_small_scenario("cli-determinism");
        let dir_a = std::env::temp_dir().join("ssim-test-dc-out-a");
        let dir_b = std::env::temp_dir().join("ssim-test-dc-out-b");
        let run = |dir: &std::path::Path| {
            execute(&Command::Dc(DcArgs {
                scenario_path: Some(scenario.to_string_lossy().into_owned()),
                seed: 7,
                mode: None,
                out_dir: Some(dir.to_string_lossy().into_owned()),
                emit_example: false,
                trace_out: None,
            }))
            .unwrap()
        };
        let out_a = run(&dir_a);
        let out_b = run(&dir_b);
        // stdout differs only in the artifact paths; compare up to them.
        let head = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("wrote "))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(head(&out_a), head(&out_b));
        for stem in ["cli-determinism-sharing", "cli-determinism-fixed"] {
            for ext in ["csv", "log"] {
                let a = std::fs::read(dir_a.join(format!("{stem}.{ext}"))).unwrap();
                let b = std::fs::read(dir_b.join(format!("{stem}.{ext}"))).unwrap();
                assert_eq!(a, b, "{stem}.{ext} must be byte-identical across runs");
                assert!(!a.is_empty());
            }
        }
        assert!(out_a.contains("utility gain"), "{out_a}");
        assert!(out_a.contains("event-log hash"), "{out_a}");

        let _ = std::fs::remove_file(&scenario);
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn dc_single_mode_and_submit_dc_against_live_daemon() {
        let scenario = write_small_scenario("cli-submit");
        let out = execute(&Command::Dc(DcArgs {
            scenario_path: Some(scenario.to_string_lossy().into_owned()),
            seed: 3,
            mode: Some(BillingMode::Sharing),
            out_dir: None,
            emit_example: false,
            trace_out: None,
        }))
        .unwrap();
        assert!(out.contains("[sharing]"), "{out}");
        assert!(!out.contains("[fixed]"), "{out}");

        let handle = sharing_server::Server::start(sharing_server::ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_capacity: 4,
            cache_capacity: 16,
            ..sharing_server::ServerConfig::default()
        })
        .unwrap();
        let reply = execute(&Command::Submit(SubmitArgs {
            addr: handle.local_addr().to_string(),
            url: None,
            trace: None,
            action: SubmitAction::Dc {
                scenario_path: scenario.to_string_lossy().into_owned(),
                seed: 3,
                mode: None,
            },
        }))
        .unwrap();
        let v = sharing_json::Json::parse(&reply).unwrap();
        assert_eq!(v.get("ok").and_then(|x| x.as_bool()), Some(true));
        assert_eq!(
            v.get("result")
                .and_then(|r| r.get("scenario"))
                .and_then(|x| x.as_str()),
            Some("cli-submit")
        );
        handle.stop();

        let _ = std::fs::remove_file(&scenario);
    }

    #[test]
    fn missing_scenario_file_reports_cleanly() {
        let cmd = Command::Dc(DcArgs {
            scenario_path: Some("/nonexistent/scenario.json".to_string()),
            seed: 1,
            mode: None,
            out_dir: None,
            emit_example: false,
            trace_out: None,
        });
        assert!(matches!(execute(&cmd), Err(CliError::BadScenario(_))));
    }

    #[test]
    fn dc_trace_out_leaves_artifacts_byte_identical() {
        let scenario = write_small_scenario("cli-trace");
        let dir_plain = std::env::temp_dir().join("ssim-test-dc-trace-plain");
        let dir_traced = std::env::temp_dir().join("ssim-test-dc-trace-traced");
        let trace = std::env::temp_dir().join("ssim-test-dc.trace.json");
        let run = |dir: &std::path::Path, trace_out: Option<String>| {
            execute(&Command::Dc(DcArgs {
                scenario_path: Some(scenario.to_string_lossy().into_owned()),
                seed: 2014,
                mode: None,
                out_dir: Some(dir.to_string_lossy().into_owned()),
                emit_example: false,
                trace_out,
            }))
            .unwrap()
        };
        let plain = run(&dir_plain, None);
        let traced = run(&dir_traced, Some(trace.to_string_lossy().into_owned()));

        // Tracing must not perturb any simulator output: same stdout
        // (minus artifact paths and the trace notice) and byte-identical
        // CSV/log artifacts.
        let head = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("wrote "))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(head(&plain), head(&traced));
        for stem in ["cli-trace-sharing", "cli-trace-fixed"] {
            for ext in ["csv", "log"] {
                let a = std::fs::read(dir_plain.join(format!("{stem}.{ext}"))).unwrap();
                let b = std::fs::read(dir_traced.join(format!("{stem}.{ext}"))).unwrap();
                assert_eq!(a, b, "{stem}.{ext} must be byte-identical with tracing on");
            }
        }

        // The trace itself is valid Chrome JSON with one span per epoch
        // phase, per billing mode, on the logical clock.
        let text = std::fs::read_to_string(&trace).unwrap();
        let v = sharing_json::Json::parse(&text).expect("trace must be valid JSON");
        let events = v.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        for phase in ["auction", "placement", "billing"] {
            let n = events
                .iter()
                .filter(|e| e.get("name").and_then(|x| x.as_str()) == Some(phase))
                .count();
            assert_eq!(n, 2 * 8, "want one `{phase}` span per epoch per mode");
        }

        let _ = std::fs::remove_file(&scenario);
        let _ = std::fs::remove_file(&trace);
        let _ = std::fs::remove_dir_all(&dir_plain);
        let _ = std::fs::remove_dir_all(&dir_traced);
    }
}

#[cfg(test)]
mod profile_tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| (*x).to_string()).collect()
    }

    #[test]
    fn profile_flag_parses_and_runs() {
        let profile = WorkloadProfile::builder("custom")
            .chains(3)
            .mem_frac(0.25)
            .build();
        let path = std::env::temp_dir().join("ssim-test-profile.json");
        std::fs::write(&path, sharing_json::to_string(&profile)).unwrap();
        let cmd = parse(&s(&[
            "run",
            "--profile",
            path.to_str().unwrap(),
            "--len",
            "600",
            "--json",
        ]))
        .unwrap();
        let out = execute(&cmd).unwrap();
        let v = sharing_json::Json::parse(&out).unwrap();
        assert_eq!(v.get("instructions").and_then(|x| x.as_int()), Some(600));
        assert_eq!(v.get("workload").and_then(|x| x.as_str()), Some("custom"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bad_profile_reports_cleanly() {
        let path = std::env::temp_dir().join("ssim-test-bad-profile.json");
        std::fs::write(&path, "{not json").unwrap();
        let cmd = parse(&s(&["run", "--profile", path.to_str().unwrap()])).unwrap();
        assert!(matches!(execute(&cmd), Err(CliError::BadProfile(_))));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn invalid_profile_parameters_rejected() {
        let mut profile = WorkloadProfile::builder("broken").build();
        profile.chains = 0;
        let path = std::env::temp_dir().join("ssim-test-invalid-profile.json");
        std::fs::write(&path, sharing_json::to_string(&profile)).unwrap();
        let cmd = parse(&s(&["run", "--profile", path.to_str().unwrap()])).unwrap();
        assert!(matches!(execute(&cmd), Err(CliError::BadProfile(_))));
        let _ = std::fs::remove_file(path);
    }
}

#[cfg(test)]
mod observability_tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| (*x).to_string()).collect()
    }

    #[test]
    fn parses_profile_flags() {
        let cmd = parse(&s(&[
            "profile",
            "--benchmark",
            "mcf",
            "--slices",
            "4",
            "--banks",
            "8",
            "--len",
            "900",
            "--seed",
            "6",
            "--json",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Profile(ProfileArgs {
                workload: Workload::Benchmark(Benchmark::Mcf),
                slices: 4,
                banks: 8,
                len: 900,
                seed: 6,
                config_path: None,
                json: true,
            })
        );
        assert_eq!(
            parse(&s(&["profile"])),
            Err(CliError::MissingValue("--benchmark".to_string()))
        );
        assert!(matches!(
            parse(&s(&["profile", "--benchmark", "gcc", "--trace-out", "x"])),
            Err(CliError::UnknownFlag(_))
        ));
    }

    #[test]
    fn parses_trace_pack_and_submit_trace() {
        assert_eq!(
            parse(&s(&["trace-pack", "in.jsonl", "out.json"])).unwrap(),
            Command::TracePack(TracePackArgs {
                input: "in.jsonl".to_string(),
                output: "out.json".to_string(),
            })
        );
        assert!(matches!(
            parse(&s(&["trace-pack", "in.jsonl"])),
            Err(CliError::MissingValue(_))
        ));
        assert!(matches!(
            parse(&s(&["trace-pack", "a", "b", "c"])),
            Err(CliError::UnknownFlag(_))
        ));

        match parse(&s(&["submit", "--benchmark", "gcc", "--trace", "42"])).unwrap() {
            Command::Submit(a) => assert_eq!(a.trace, Some(42)),
            other => panic!("expected submit, got {other:?}"),
        }
        // A trace id is meaningless on control requests.
        assert!(matches!(
            parse(&s(&["submit", "--ping", "--trace", "7"])),
            Err(CliError::ConflictingFlags(_))
        ));
    }

    #[test]
    fn profile_conserves_cycles_and_is_byte_identical() {
        let cmd = parse(&s(&[
            "profile",
            "--benchmark",
            "gcc",
            "--slices",
            "2",
            "--len",
            "800",
            "--seed",
            "5",
        ]))
        .unwrap();
        let a = execute(&cmd).unwrap();
        let b = execute(&cmd).unwrap();
        assert_eq!(a, b, "same seed must give byte-identical profiles");
        assert!(a.contains("conserved true"), "{a}");
        for bucket in sharing_core::profile::BUCKET_NAMES {
            assert!(a.contains(bucket), "missing bucket {bucket}:\n{a}");
        }
    }

    #[test]
    fn profile_json_buckets_sum_to_total_cycles() {
        let cmd = parse(&s(&[
            "profile",
            "--benchmark",
            "mcf",
            "--len",
            "700",
            "--json",
        ]))
        .unwrap();
        let out = execute(&cmd).unwrap();
        let v = sharing_json::Json::parse(&out).unwrap();
        let cycles = v
            .get("result")
            .and_then(|r| r.get("cycles"))
            .and_then(|x| x.as_int())
            .unwrap();
        let profile: sharing_core::profile::CycleProfile =
            sharing_json::from_str(&sharing_json::to_string(v.get("profile").unwrap())).unwrap();
        assert_eq!(i128::from(profile.cycles), cycles);
        assert!(profile.conserved(), "{profile:?}");
    }

    #[test]
    fn profile_rejects_threaded_workloads() {
        let parsec = ALL_BENCHMARKS
            .iter()
            .find(|b| b.is_parsec())
            .expect("suite has PARSEC benchmarks");
        let cmd = Command::Profile(ProfileArgs {
            workload: Workload::Benchmark(*parsec),
            slices: 1,
            banks: 2,
            len: 400,
            seed: 1,
            config_path: None,
            json: false,
        });
        assert!(matches!(execute(&cmd), Err(CliError::ConflictingFlags(_))));
    }

    #[test]
    fn trace_pack_rewraps_streamed_jsonl_and_skips_torn_tail() {
        let dir = std::env::temp_dir();
        let jsonl = dir.join(format!("ssim-test-pack-{}.jsonl", std::process::id()));
        let packed = dir.join(format!("ssim-test-pack-{}.json", std::process::id()));
        std::fs::write(
            &jsonl,
            "{\"name\":\"a\",\"cat\":\"test\",\"ph\":\"X\",\"ts\":0,\"dur\":5,\"pid\":1,\"tid\":0}\n\
             {\"name\":\"b\",\"cat\":\"test\",\"ph\":\"X\",\"ts\":5,\"dur\":3,\"pid\":1,\"tid\":0}\n\
             {\"name\":\"torn",
        )
        .unwrap();
        let msg = execute(&Command::TracePack(TracePackArgs {
            input: jsonl.to_string_lossy().into_owned(),
            output: packed.to_string_lossy().into_owned(),
        }))
        .unwrap();
        assert!(msg.contains("2 span(s) packed, 1 skipped"), "{msg}");
        let doc = std::fs::read_to_string(&packed).unwrap();
        let v = sharing_json::Json::parse(&doc).expect("packed doc must be valid JSON");
        let events = v.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        for name in ["a", "b"] {
            assert!(
                events
                    .iter()
                    .any(|e| e.get("name").and_then(|n| n.as_str()) == Some(name)),
                "missing span {name}"
            );
        }
        let _ = std::fs::remove_file(&jsonl);
        let _ = std::fs::remove_file(&packed);
    }

    #[test]
    fn traced_submit_lands_spans_in_the_streaming_sink() {
        let path = std::env::temp_dir().join(format!(
            "ssim-test-traced-{}.trace.jsonl",
            std::process::id()
        ));
        let handle = sharing_server::Server::start(sharing_server::ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_capacity: 4,
            cache_capacity: 16,
            trace_path: Some(path.to_string_lossy().into_owned()),
            ..sharing_server::ServerConfig::default()
        })
        .unwrap();
        let out = execute(&Command::Submit(SubmitArgs {
            addr: handle.local_addr().to_string(),
            url: None,
            trace: Some(777),
            action: SubmitAction::Run {
                benchmark: Benchmark::Gcc,
                slices: 1,
                banks: 2,
                len: 400,
                seed: 3,
            },
        }))
        .unwrap();
        let v = sharing_json::Json::parse(&out).unwrap();
        assert_eq!(v.get("ok").and_then(|x| x.as_bool()), Some(true));
        handle.stop();

        // The streamed sink holds the job's spans, tagged with the id.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"trace\":777"), "no trace id in:\n{text}");
        let _ = std::fs::remove_file(&path);
    }
}

#[cfg(test)]
mod asm_tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| (*x).to_string()).collect()
    }

    #[test]
    fn asm_workload_runs_end_to_end() {
        let path = std::env::temp_dir().join("ssim-test-kernel.s");
        std::fs::write(
            &path,
            "alu r1, r1\nst r1, [0x40]\nld r2, [0x40]\nalu r3, r2\nbr.nt 0x0, r3\n",
        )
        .unwrap();
        let cmd = parse(&s(&[
            "run",
            "--asm",
            path.to_str().unwrap(),
            "--len",
            "500",
            "--slices",
            "2",
            "--json",
        ]))
        .unwrap();
        let out = execute(&cmd).unwrap();
        let v = sharing_json::Json::parse(&out).unwrap();
        assert_eq!(v.get("instructions").and_then(|x| x.as_int()), Some(500));
        assert_eq!(
            v.get("workload").and_then(|x| x.as_str()),
            Some("ssim-test-kernel")
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bad_asm_reports_cleanly() {
        let path = std::env::temp_dir().join("ssim-test-bad.s");
        std::fs::write(&path, "explode r1").unwrap();
        let cmd = parse(&s(&["run", "--asm", path.to_str().unwrap()])).unwrap();
        let e = execute(&cmd).unwrap_err();
        assert!(matches!(e, CliError::BadAsm(_)), "{e}");
        assert!(e.to_string().contains("explode"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn empty_asm_rejected() {
        let path = std::env::temp_dir().join("ssim-test-empty.s");
        std::fs::write(&path, "# nothing here\n").unwrap();
        let cmd = parse(&s(&["run", "--asm", path.to_str().unwrap()])).unwrap();
        assert!(matches!(execute(&cmd), Err(CliError::BadAsm(_))));
        let _ = std::fs::remove_file(path);
    }
}
