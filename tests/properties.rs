//! Property-style tests over the whole stack (see DESIGN.md §6).
//!
//! Each test draws a couple dozen random cases from a seeded [`Rng64`], so
//! coverage is property-shaped but fully deterministic — a failure
//! reproduces by its printed case seed alone.

use sharing_arch::core::{ModelKnobs, RunOptions, SimConfig, Simulator, VCoreShape};
use sharing_arch::hv::{Chip, Hypervisor};
use sharing_arch::market::{optimize, Market, PerfSurface, UtilityFn};
use sharing_arch::trace::io;
use sharing_arch::trace::{MemRegion, ProgramGenerator, Rng64, TraceSpec, WorkloadProfile};

const CASES: u64 = 24;

/// A random but valid workload profile.
fn arb_profile(rng: &mut Rng64) -> WorkloadProfile {
    let chains = rng.usize_inclusive(1, 7);
    let mem = 0.05 + 0.40 * rng.f64();
    let br = 0.02 + 0.23 * rng.f64();
    let hard = 0.5 * rng.f64();
    let chase = 0.6 * rng.f64();
    let region_kb = rng.range_inclusive(12, 4095);
    let burst = rng.usize_inclusive(1, 9);
    WorkloadProfile::builder("prop")
        .chains(chains)
        .mem_frac(mem)
        .branch_frac(br)
        .hard_branches(hard, 0.5)
        .pointer_chase(chase)
        .spatial_burst(burst)
        .region(MemRegion::random(8 << 10, 0.5))
        .region(MemRegion::random(region_kb << 10, 0.5))
        .build()
}

/// A random shape from the sweep grid's bank set.
fn arb_shape(rng: &mut Rng64) -> VCoreShape {
    let banks = [0usize, 1, 2, 4, 8, 16];
    VCoreShape::new(
        rng.usize_inclusive(1, 8),
        banks[rng.usize_inclusive(0, banks.len() - 1)],
    )
    .expect("valid")
}

/// Any valid profile on any valid shape simulates to a sane result with
/// ordered commits and conservation of instructions.
#[test]
fn simulator_is_total_and_sane() {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0x51A9E + case);
        let profile = arb_profile(&mut rng);
        let shape = arb_shape(&mut rng);
        let seed = rng.below(1000);
        let spec = TraceSpec::new(1_500, seed);
        let trace = ProgramGenerator::new(&profile, spec)
            .unwrap()
            .generate_single();
        let cfg = SimConfig::with_shape(shape.slices, shape.l2_banks).unwrap();
        let out = Simulator::new(cfg)
            .unwrap()
            .run_with(&trace, RunOptions::new().record_timings());
        let (r, timings) = (out.result, out.timings.unwrap());
        assert_eq!(r.instructions, 1_500, "case {case}");
        assert!(r.cycles > 0, "case {case}");
        assert!(
            r.ipc() <= 2.0 * shape.slices as f64 + 0.01,
            "case {case}: IPC beyond fetch width"
        );
        let mut prev_commit = 0;
        for t in &timings {
            assert!(t.fetch < t.dispatch, "case {case}");
            assert!(t.dispatch < t.issue, "case {case}");
            assert!(t.issue < t.exec_done, "case {case}");
            assert!(t.exec_done <= t.commit, "case {case}");
            assert!(
                t.commit >= prev_commit,
                "case {case}: commit order violated"
            );
            assert!(t.slice < shape.slices, "case {case}");
            prev_commit = t.commit;
        }
    }
}

/// The pipeline preserves program semantics: the committed
/// destination-value stream, computed through the engine's own rename and
/// store-forwarding bookkeeping, matches the architectural interpreter on
/// arbitrary programs and shapes.
#[test]
fn dataflow_matches_interpreter() {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0xDA7A + case);
        let profile = arb_profile(&mut rng);
        let shape = arb_shape(&mut rng);
        let seed = rng.below(300);
        let spec = TraceSpec::new(1_200, seed);
        let trace = ProgramGenerator::new(&profile, spec)
            .unwrap()
            .generate_single();
        let cfg = SimConfig::with_shape(shape.slices, shape.l2_banks).unwrap();
        let ok = Simulator::new(cfg)
            .unwrap()
            .run_with(&trace, RunOptions::new().verify())
            .verified;
        assert!(
            ok == Some(true),
            "case {case}: committed values diverged from the interpreter"
        );
    }
}

/// An ordered LSQ never reports violations.
#[test]
fn ordered_lsq_has_no_violations() {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0x15C0 + case);
        let profile = arb_profile(&mut rng);
        let seed = rng.below(200);
        let spec = TraceSpec::new(1_500, seed);
        let trace = ProgramGenerator::new(&profile, spec)
            .unwrap()
            .generate_single();
        let ordered = SimConfig::builder()
            .slices(4)
            .l2_banks(2)
            .knobs(ModelKnobs {
                unordered_lsq: false,
                ..ModelKnobs::default()
            })
            .build()
            .unwrap();
        let r = Simulator::new(ordered)
            .unwrap()
            .run_with(&trace, RunOptions::new())
            .result;
        assert_eq!(r.mem.lsq_violations, 0, "case {case}");
    }
}

/// Trace serialization roundtrips exactly for arbitrary generated
/// programs.
#[test]
fn trace_io_roundtrip() {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0x10AD + case);
        let profile = arb_profile(&mut rng);
        let seed = rng.below(500);
        let spec = TraceSpec::new(400, seed);
        let trace = ProgramGenerator::new(&profile, spec)
            .unwrap()
            .generate_single();
        let decoded = io::decode_trace(&io::encode_trace(&trace)).unwrap();
        assert_eq!(trace, decoded, "case {case}");
    }
}

/// The committed path produced by the generator is a real control-flow
/// path: every instruction's next-PC is the next instruction's PC.
#[test]
fn generated_control_flow_is_connected() {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0xC0DE + case);
        let profile = arb_profile(&mut rng);
        let seed = rng.below(500);
        let spec = TraceSpec::new(1_000, seed);
        let trace = ProgramGenerator::new(&profile, spec)
            .unwrap()
            .generate_single();
        for w in trace.insts().windows(2) {
            assert_eq!(w[0].next_pc(), w[1].pc, "case {case}");
        }
    }
}

/// The utility optimizer never exceeds the budget and always returns a
/// grid shape.
#[test]
fn optimizer_respects_budget() {
    let mut rng = Rng64::seed_from_u64(0xB1D);
    for case in 0..CASES {
        let budget = 1.0 + 999.0 * rng.f64();
        let utility = [
            UtilityFn::Throughput,
            UtilityFn::Balanced,
            UtilityFn::LatencyCritical,
        ][rng.usize_inclusive(0, 2)];
        let surface = PerfSurface::from_fn("prop", |s| {
            (1.0 + s.slices as f64).ln() * (1.0 + (s.l2_banks as f64).sqrt() / 4.0)
        });
        for market in Market::ALL {
            let chosen = optimize::best_utility(&surface, utility, &market, budget);
            let v = market.affordable_cores(chosen.shape, budget);
            assert!(
                v * market.vcore_cost(chosen.shape) <= budget * (1.0 + 1e-9),
                "case {case}"
            );
            assert!(
                chosen.shape.slices >= 1 && chosen.shape.slices <= 8,
                "case {case}"
            );
        }
    }
}

/// The hypervisor never double-books tiles, whatever the lease/release
/// sequence, and released capacity is reusable.
#[test]
fn hypervisor_never_double_books() {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0x2EA5E + case);
        let n_ops = rng.usize_inclusive(1, 23);
        let mut hv = Hypervisor::new(Chip::new(4, 12));
        let mut live: Vec<sharing_arch::hv::LeaseId> = Vec::new();
        for _ in 0..n_ops {
            let slices = rng.usize_inclusive(1, 4);
            let banks = rng.usize_inclusive(0, 6);
            if rng.bool(0.5) {
                if let Some(id) = live.pop() {
                    hv.release(id).unwrap();
                }
            }
            if let Ok(id) = hv.lease(VCoreShape::new(slices, banks).unwrap()) {
                live.push(id);
            }
            // Invariant: allocated tiles across live leases are disjoint.
            let mut seen = std::collections::HashSet::new();
            for &id in &live {
                let lease = hv.get(id).unwrap();
                for t in lease.slices.iter().chain(&lease.banks) {
                    assert!(
                        seen.insert((t.row, t.col)),
                        "case {case}: tile double-booked"
                    );
                }
            }
        }
    }
}

/// Mesh routing always terminates at the destination with hop count equal
/// to the Manhattan distance.
#[test]
fn mesh_routes_are_shortest_paths() {
    use sharing_arch::noc::{Coord, Mesh};
    let mesh = Mesh::new(8, 8);
    let mut rng = Rng64::seed_from_u64(0x3E5);
    for case in 0..4 * CASES {
        let a = Coord::new(rng.below(8) as u16, rng.below(8) as u16);
        let b = Coord::new(rng.below(8) as u16, rng.below(8) as u16);
        let path = mesh.route(a, b);
        assert_eq!(path.len() as u32, mesh.hops(a, b), "case {case}");
        if let Some(last) = path.last() {
            assert_eq!(last.to, b, "case {case}");
        }
        for w in path.windows(2) {
            assert_eq!(w[0].to, w[1].from, "case {case}");
            assert_eq!(w[0].from.manhattan(w[0].to), 1, "case {case}");
        }
    }
}

/// Caches never report more hits than accesses and a flushed cache is
/// empty, whatever the access pattern.
#[test]
fn cache_accounting_is_consistent() {
    use sharing_arch::cache::{CacheGeometry, SetAssocCache};
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0xCAC4E + case);
        let mut c = SetAssocCache::new(CacheGeometry::new(4 << 10, 64, 2).unwrap());
        for _ in 0..rng.usize_inclusive(1, 199) {
            c.access(rng.below(512), rng.bool(0.5));
        }
        let s = c.stats();
        assert!(s.hits <= s.accesses, "case {case}");
        assert!(c.resident_lines() <= 64, "case {case}");
        c.flush_all();
        assert_eq!(c.resident_lines(), 0, "case {case}");
    }
}
