//! Property-based tests over the whole stack (see DESIGN.md §6).

use proptest::prelude::*;
use sharing_arch::core::{ModelKnobs, SimConfig, Simulator, VCoreShape};
use sharing_arch::hv::{Chip, Hypervisor};
use sharing_arch::market::{optimize, Market, PerfSurface, UtilityFn};
use sharing_arch::trace::io;
use sharing_arch::trace::{MemRegion, ProgramGenerator, TraceSpec, WorkloadProfile};

fn arb_profile() -> impl Strategy<Value = WorkloadProfile> {
    (
        1usize..8,       // chains
        0.05f64..0.45,   // mem_frac
        0.02f64..0.25,   // branch_frac
        0.0f64..0.5,     // hard branch share
        0.0f64..0.6,     // pointer chase
        12u64..4096,     // region KB
        1usize..10,      // spatial burst
    )
        .prop_map(
            |(chains, mem, br, hard, chase, region_kb, burst)| {
                WorkloadProfile::builder("prop")
                    .chains(chains)
                    .mem_frac(mem)
                    .branch_frac(br)
                    .hard_branches(hard, 0.5)
                    .pointer_chase(chase)
                    .spatial_burst(burst)
                    .region(MemRegion::random(8 << 10, 0.5))
                    .region(MemRegion::random(region_kb << 10, 0.5))
                    .build()
            },
        )
}

fn arb_shape() -> impl Strategy<Value = VCoreShape> {
    (1usize..=8, prop::sample::select(vec![0usize, 1, 2, 4, 8, 16]))
        .prop_map(|(s, b)| VCoreShape::new(s, b).expect("valid"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any valid profile on any valid shape simulates to a sane result
    /// with ordered commits and conservation of instructions.
    #[test]
    fn simulator_is_total_and_sane(profile in arb_profile(), shape in arb_shape(), seed in 0u64..1000) {
        let spec = TraceSpec::new(1_500, seed);
        let trace = ProgramGenerator::new(&profile, spec).unwrap().generate_single();
        let cfg = SimConfig::with_shape(shape.slices, shape.l2_banks).unwrap();
        let (r, timings) = Simulator::new(cfg).unwrap().run_detailed(&trace);
        prop_assert_eq!(r.instructions, 1_500);
        prop_assert!(r.cycles > 0);
        prop_assert!(r.ipc() <= 2.0 * shape.slices as f64 + 0.01, "IPC beyond fetch width");
        let mut prev_commit = 0;
        for t in &timings {
            prop_assert!(t.fetch < t.dispatch);
            prop_assert!(t.dispatch < t.issue);
            prop_assert!(t.issue < t.exec_done);
            prop_assert!(t.exec_done <= t.commit);
            prop_assert!(t.commit >= prev_commit, "commit order violated");
            prop_assert!(t.slice < shape.slices);
            prev_commit = t.commit;
        }
    }

    /// The pipeline preserves program semantics: the committed
    /// destination-value stream, computed through the engine's own rename
    /// and store-forwarding bookkeeping, matches the architectural
    /// interpreter on arbitrary programs and shapes.
    #[test]
    fn dataflow_matches_interpreter(profile in arb_profile(), shape in arb_shape(), seed in 0u64..300) {
        let spec = TraceSpec::new(1_200, seed);
        let trace = ProgramGenerator::new(&profile, spec).unwrap().generate_single();
        let cfg = SimConfig::with_shape(shape.slices, shape.l2_banks).unwrap();
        let (_, ok) = Simulator::new(cfg).unwrap().run_verified(&trace);
        prop_assert!(ok, "committed values diverged from the interpreter");
    }

    /// The unordered, speculative LSQ never beats ordering by more than
    /// speculation can explain — and an ordered LSQ never reports
    /// violations.
    #[test]
    fn ordered_lsq_has_no_violations(profile in arb_profile(), seed in 0u64..200) {
        let spec = TraceSpec::new(1_500, seed);
        let trace = ProgramGenerator::new(&profile, spec).unwrap().generate_single();
        let ordered = SimConfig::builder()
            .slices(4)
            .l2_banks(2)
            .knobs(ModelKnobs { unordered_lsq: false, ..ModelKnobs::default() })
            .build()
            .unwrap();
        let r = Simulator::new(ordered).unwrap().run(&trace);
        prop_assert_eq!(r.mem.lsq_violations, 0);
    }

    /// Trace serialization roundtrips exactly for arbitrary generated
    /// programs.
    #[test]
    fn trace_io_roundtrip(profile in arb_profile(), seed in 0u64..500) {
        let spec = TraceSpec::new(400, seed);
        let trace = ProgramGenerator::new(&profile, spec).unwrap().generate_single();
        let decoded = io::decode_trace(io::encode_trace(&trace)).unwrap();
        prop_assert_eq!(trace, decoded);
    }

    /// The committed path produced by the generator is a real control-flow
    /// path: every instruction's next-PC is the next instruction's PC.
    #[test]
    fn generated_control_flow_is_connected(profile in arb_profile(), seed in 0u64..500) {
        let spec = TraceSpec::new(1_000, seed);
        let trace = ProgramGenerator::new(&profile, spec).unwrap().generate_single();
        for w in trace.insts().windows(2) {
            prop_assert_eq!(w[0].next_pc(), w[1].pc);
        }
    }

    /// The utility optimizer never exceeds the budget and always returns a
    /// grid shape.
    #[test]
    fn optimizer_respects_budget(budget in 1.0f64..1000.0, k in 0usize..3) {
        let utility = [UtilityFn::Throughput, UtilityFn::Balanced, UtilityFn::LatencyCritical][k];
        let surface = PerfSurface::from_fn("prop", |s| {
            (1.0 + s.slices as f64).ln() * (1.0 + (s.l2_banks as f64).sqrt() / 4.0)
        });
        for market in Market::ALL {
            let chosen = optimize::best_utility(&surface, utility, &market, budget);
            let v = market.affordable_cores(chosen.shape, budget);
            prop_assert!(v * market.vcore_cost(chosen.shape) <= budget * (1.0 + 1e-9));
            prop_assert!(chosen.shape.slices >= 1 && chosen.shape.slices <= 8);
        }
    }

    /// The hypervisor never double-books tiles, whatever the lease/release
    /// sequence, and released capacity is reusable.
    #[test]
    fn hypervisor_never_double_books(ops in prop::collection::vec((1usize..=4, 0usize..=6, prop::bool::ANY), 1..24)) {
        let mut hv = Hypervisor::new(Chip::new(4, 12));
        let mut live: Vec<sharing_arch::hv::LeaseId> = Vec::new();
        for (slices, banks, release_first) in ops {
            if release_first {
                if let Some(id) = live.pop() {
                    hv.release(id).unwrap();
                }
            }
            if let Ok(id) = hv.lease(VCoreShape::new(slices, banks).unwrap()) {
                live.push(id);
            }
            // Invariant: allocated tiles across live leases are disjoint.
            let mut seen = std::collections::HashSet::new();
            for &id in &live {
                let lease = hv.get(id).unwrap();
                for t in lease.slices.iter().chain(&lease.banks) {
                    prop_assert!(seen.insert((t.row, t.col)), "tile double-booked");
                }
            }
        }
    }

    /// Mesh routing always terminates at the destination with hop count
    /// equal to the Manhattan distance.
    #[test]
    fn mesh_routes_are_shortest_paths(ax in 0u16..8, ay in 0u16..8, bx in 0u16..8, by in 0u16..8) {
        use sharing_arch::noc::{Coord, Mesh};
        let mesh = Mesh::new(8, 8);
        let a = Coord::new(ax, ay);
        let b = Coord::new(bx, by);
        let path = mesh.route(a, b);
        prop_assert_eq!(path.len() as u32, mesh.hops(a, b));
        if let Some(last) = path.last() {
            prop_assert_eq!(last.to, b);
        }
        for w in path.windows(2) {
            prop_assert_eq!(w[0].to, w[1].from);
            prop_assert_eq!(w[0].from.manhattan(w[0].to), 1);
        }
    }

    /// Caches never report more hits than accesses and a flushed cache is
    /// empty, whatever the access pattern.
    #[test]
    fn cache_accounting_is_consistent(lines in prop::collection::vec((0u64..512, prop::bool::ANY), 1..200)) {
        use sharing_arch::cache::{CacheGeometry, SetAssocCache};
        let mut c = SetAssocCache::new(CacheGeometry::new(4 << 10, 64, 2).unwrap());
        for (line, write) in lines {
            c.access(line, write);
        }
        let s = c.stats();
        prop_assert!(s.hits <= s.accesses);
        prop_assert!(c.resident_lines() <= 64);
        c.flush_all();
        prop_assert_eq!(c.resident_lines(), 0);
    }
}
