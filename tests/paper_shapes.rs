//! Shape-level regression tests against the paper's published results:
//! not absolute numbers (our substrate is a synthetic-trace simulator, not
//! the authors' GEM5 + Verilog flow), but who wins, in which direction,
//! and roughly by how much. These are the claims EXPERIMENTS.md records.

use sharing_arch::area::{AreaModel, SliceComponent};
use sharing_arch::core::{RunOptions, SimConfig, Simulator, VCoreShape, VmSimulator};
use sharing_arch::trace::{Benchmark, TraceSpec};

const SPEC: TraceSpec = TraceSpec {
    len: 20_000,
    seed: 0x5A7E,
};

fn ipc(bench: Benchmark, slices: usize, banks: usize) -> f64 {
    let cfg = SimConfig::with_shape(slices, banks).unwrap();
    if bench.is_parsec() {
        VmSimulator::new(cfg)
            .unwrap()
            .run(&bench.generate_threaded(&SPEC))
            .ipc()
    } else {
        Simulator::new(cfg)
            .unwrap()
            .run_with(&bench.generate(&SPEC), RunOptions::new())
            .result
            .ipc()
    }
}

// ---- Figure 12: Slice scalability -------------------------------------

#[test]
fn fig12_ilp_workloads_scale_with_slices() {
    // The paper's best curves approach 5x at 8 Slices.
    let speedup = ipc(Benchmark::Libquantum, 8, 2) / ipc(Benchmark::Libquantum, 1, 2);
    assert!(speedup > 2.5, "libquantum 8-slice speedup {speedup:.2}");
    let h264 = ipc(Benchmark::H264ref, 8, 2) / ipc(Benchmark::H264ref, 1, 2);
    assert!(h264 > 1.6, "h264ref 8-slice speedup {h264:.2}");
}

#[test]
fn fig12_serial_workloads_do_not_scale() {
    // hmmer prefers a single Slice (Table 4 / §5.9); extra Slices only add
    // operand-communication latency.
    let hmmer = ipc(Benchmark::Hmmer, 8, 2) / ipc(Benchmark::Hmmer, 1, 2);
    assert!(hmmer < 1.0, "hmmer should not benefit: {hmmer:.2}");
    let mcf = ipc(Benchmark::Mcf, 8, 2) / ipc(Benchmark::Mcf, 1, 2);
    assert!(mcf < 1.15, "mcf is memory-bound: {mcf:.2}");
}

#[test]
fn fig12_parsec_speedup_is_bounded_near_two() {
    // §5.3: "Compared with SPEC, PARSEC benchmarks have less ILP; the
    // speedup is bounded by 2."
    for bench in [Benchmark::Dedup, Benchmark::Swaptions, Benchmark::Ferret] {
        let speedup = ipc(bench, 8, 4) / ipc(bench, 1, 4);
        assert!(
            speedup < 3.0,
            "{bench}: PARSEC speedup should be bounded, got {speedup:.2}"
        );
    }
}

// ---- Figure 13: cache sensitivity --------------------------------------

#[test]
fn fig13_sensitive_benchmarks_gain_from_cache() {
    for bench in [Benchmark::Omnetpp, Benchmark::Mcf] {
        let gain = ipc(bench, 2, 8) / ipc(bench, 2, 0);
        assert!(gain > 1.4, "{bench} 512KB gain {gain:.2}");
    }
}

#[test]
fn fig13_insensitive_benchmarks_stay_flat() {
    // gobmk/sjeng sit near the flat group in the paper's Figure 13.
    for bench in [Benchmark::Gobmk, Benchmark::Sjeng] {
        let gain = ipc(bench, 2, 32) / ipc(bench, 2, 1);
        assert!(
            gain < 1.25,
            "{bench} should be nearly flat beyond 64KB: {gain:.2}"
        );
    }
}

#[test]
fn fig13_giant_caches_can_hurt() {
    // §5.4: "Performance can actually decrease as more cache is added"
    // because of the 2-cycles-per-256KB distance model.
    for bench in [Benchmark::Hmmer, Benchmark::Gobmk, Benchmark::H264ref] {
        let small = ipc(bench, 2, 4);
        let huge = ipc(bench, 2, 128);
        assert!(
            huge < small,
            "{bench}: 8MB ({huge:.3}) should lose to 256KB ({small:.3})"
        );
    }
}

// ---- Figures 10/11: area ------------------------------------------------

#[test]
fn fig10_sharing_overhead_is_modest() {
    let model = AreaModel::paper();
    let frac = model.sharing_overhead_mm2() / model.slice_mm2();
    assert!((frac - 0.08).abs() < 0.01, "sharing overhead {frac:.3}");
    // Caches dominate the Slice, as in the paper's pie chart.
    let l1 = SliceComponent::L1ICache.fraction() + SliceComponent::L1DCache.fraction();
    assert!(l1 > 0.45);
}

#[test]
fn fig11_bank_is_about_a_third_of_slice_plus_bank() {
    let model = AreaModel::paper();
    let (_, bank_share) = model.with_bank_fractions();
    assert!(
        (bank_share - 0.35).abs() < 0.05,
        "bank share {bank_share:.3}"
    );
}

// ---- §5.1: one operand network suffices ---------------------------------

#[test]
fn second_operand_network_buys_little() {
    use sharing_arch::core::ModelKnobs;
    let trace = Benchmark::Gcc.generate(&SPEC);
    let base_cfg = SimConfig::builder().slices(8).l2_banks(2).build().unwrap();
    let two = SimConfig::builder()
        .slices(8)
        .l2_banks(2)
        .knobs(ModelKnobs {
            operand_planes: 2,
            ..ModelKnobs::default()
        })
        .build()
        .unwrap();
    let run = |cfg| {
        Simulator::new(cfg)
            .unwrap()
            .run_with(&trace, RunOptions::new())
            .result
            .ipc()
    };
    let one_ipc = run(base_cfg);
    let two_ipc = run(two);
    let gain = two_ipc / one_ipc - 1.0;
    assert!(
        gain < 0.10,
        "paper found ≈1%; a second plane should not be transformative: {:.1}%",
        100.0 * gain
    );
}

// ---- §5.8: market efficiency ---------------------------------------------

#[test]
fn sharing_dominates_any_fixed_shape_per_customer() {
    use sharing_arch::market::{optimize, ExperimentSpec, Market, SuiteSurfaces, UtilityFn};
    let suite = SuiteSurfaces::build_subset(
        ExperimentSpec::quick(),
        &[Benchmark::Hmmer, Benchmark::Omnetpp],
    );
    let fixed = VCoreShape::new(4, 8).unwrap();
    for (b, surf) in suite.iter() {
        for u in [UtilityFn::Throughput, UtilityFn::LatencyCritical] {
            let best = optimize::best_utility(surf, u, &Market::MARKET2, 48.0);
            let at_fixed = optimize::utility_at(surf, fixed, u, &Market::MARKET2, 48.0);
            assert!(
                best.value >= at_fixed - 1e-12,
                "{b}/{u}: optimum {} below fixed {at_fixed}",
                best.value
            );
        }
    }
}

// ---- Table 2/3 defaults ---------------------------------------------------

#[test]
fn base_configuration_matches_paper_tables() {
    let cfg = SimConfig::builder().build().unwrap();
    assert_eq!(cfg.slice.rob_entries, 64);
    assert_eq!(cfg.slice.issue_window, 32);
    assert_eq!(cfg.slice.lsq_entries, 32);
    assert_eq!(cfg.slice.store_buffer, 8);
    assert_eq!(cfg.slice.max_inflight_loads, 8);
    assert_eq!(cfg.slice.local_regs, 64);
    assert_eq!(cfg.slice.global_regs, 128);
    assert_eq!(cfg.mem.memory_delay, 100);
    assert_eq!(cfg.mem.l1_hit, 3);
    // Table 3's L2 delay: distance*2 + 4.
    assert_eq!(cfg.mem.l2_latency.hit_latency(3), 10);
}
