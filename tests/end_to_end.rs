//! End-to-end integration: every crate wired together the way the bench
//! harness uses them.

use sharing_arch::core::{RunOptions, SimConfig, Simulator, VCoreShape, VmSimulator};
use sharing_arch::hv::{Chip, Hypervisor};
use sharing_arch::trace::{Benchmark, TraceSpec, ALL_BENCHMARKS};

const SPEC: TraceSpec = TraceSpec {
    len: 5_000,
    seed: 0xE2E,
};

#[test]
fn every_benchmark_runs_on_representative_shapes() {
    for bench in ALL_BENCHMARKS {
        for (slices, banks) in [(1, 0), (2, 2), (8, 16)] {
            let cfg = SimConfig::with_shape(slices, banks).unwrap();
            let ipc = if bench.is_parsec() {
                let w = bench.generate_threaded(&SPEC);
                let r = VmSimulator::new(cfg).unwrap().run(&w);
                assert_eq!(r.instructions, 4 * SPEC.len as u64, "{bench}");
                r.ipc()
            } else {
                let t = bench.generate(&SPEC);
                let r = Simulator::new(cfg)
                    .unwrap()
                    .run_with(&t, RunOptions::new())
                    .result;
                assert_eq!(r.instructions, SPEC.len as u64, "{bench}");
                r.ipc()
            };
            assert!(
                ipc > 0.01 && ipc < 16.0,
                "{bench} at {slices}s/{banks}b: implausible IPC {ipc}"
            );
        }
    }
}

#[test]
fn simulation_is_deterministic_across_reruns() {
    let t = Benchmark::Sjeng.generate(&SPEC);
    let cfg = SimConfig::with_shape(3, 4).unwrap();
    let a = Simulator::new(cfg)
        .unwrap()
        .run_with(&t, RunOptions::new())
        .result;
    let b = Simulator::new(cfg)
        .unwrap()
        .run_with(&t, RunOptions::new())
        .result;
    assert_eq!(a, b);
}

#[test]
fn trace_io_roundtrips_through_the_facade() {
    use sharing_arch::trace::io;
    let t = Benchmark::Bzip.generate(&SPEC);
    let decoded = io::decode_trace(&io::encode_trace(&t)).unwrap();
    assert_eq!(t, decoded);
}

#[test]
fn hypervisor_leases_shapes_the_simulator_accepts() {
    let mut hv = Hypervisor::new(Chip::new(4, 16));
    let shape = VCoreShape::new(4, 8).unwrap();
    let lease = hv.lease(shape).unwrap();
    let l = hv.get(lease).unwrap();
    // Bank distances from a real placement feed the L2 latency model.
    let distances = l.bank_distances();
    assert_eq!(distances.len(), 8);
    let cfg = SimConfig::with_shape(shape.slices, shape.l2_banks).unwrap();
    let r = Simulator::new(cfg)
        .unwrap()
        .run_with(&Benchmark::Gcc.generate(&SPEC), RunOptions::new())
        .result;
    assert!(r.ipc() > 0.05);
}

#[test]
fn interpreter_agrees_with_itself_on_generated_traces() {
    // The architectural interpreter is the semantic reference for the
    // generator's register usage: re-running it must be deterministic and
    // every committed value stream identical.
    use sharing_arch::isa::Interpreter;
    let t = Benchmark::Perlbench.generate(&SPEC);
    let mut a = Interpreter::new();
    let mut b = Interpreter::new();
    assert_eq!(a.run(t.insts()), b.run(t.insts()));
    assert_eq!(a.committed(), SPEC.len as u64);
}

#[test]
fn reconfiguration_costs_show_up_in_phased_runs() {
    use sharing_arch::core::{run_phased_with, EngineKind, ReconfigCosts};
    let t = Benchmark::Gcc.generate(&TraceSpec::new(6_000, 3));
    let phases = t.split_phases(3);
    let small = SimConfig::with_shape(1, 1).unwrap();
    let big = SimConfig::with_shape(1, 4).unwrap();
    let alternating = vec![
        (phases[0].clone(), small),
        (phases[1].clone(), big),
        (phases[2].clone(), small),
    ];
    let with_cost =
        run_phased_with(&alternating, ReconfigCosts::paper(), EngineKind::default()).unwrap();
    let free = run_phased_with(
        &alternating,
        ReconfigCosts {
            slice_only: 0,
            cache_change: 0,
        },
        EngineKind::default(),
    )
    .unwrap();
    assert_eq!(with_cost.cycles - free.cycles, 2 * 10_000);
}

#[test]
fn placement_distance_costs_cycles() {
    // Same shape, two placements: the hypervisor's nearest-bank lease on an
    // empty chip vs a synthetic worst case with every bank far away.
    use sharing_arch::core::Simulator;
    let trace = Benchmark::Omnetpp.generate(&TraceSpec::new(8_000, 6));
    let cfg = SimConfig::with_shape(2, 8).unwrap();

    let mut hv = Hypervisor::new(Chip::new(8, 16));
    let lease = hv.lease(VCoreShape::new(2, 8).unwrap()).unwrap();
    let near = hv.get(lease).unwrap().bank_distances();
    assert_eq!(near.len(), 8);

    let sim = Simulator::new(cfg).unwrap();
    let near_result = sim
        .run_with(&trace, RunOptions::new().bank_distances(near))
        .result;
    let far_result = sim
        .run_with(&trace, RunOptions::new().bank_distances(vec![12; 8]))
        .result;
    assert!(
        far_result.cycles > near_result.cycles,
        "distant banks must cost cycles: {} vs {}",
        far_result.cycles,
        near_result.cycles
    );
    assert_eq!(near_result.instructions, far_result.instructions);
}

#[test]
fn reuse_profile_predicts_simulator_hit_behaviour() {
    // Cross-validation: the analytic LRU predictor over the trace's reuse
    // distances should roughly anticipate how much of the memory traffic
    // the simulated two-level hierarchy keeps away from DRAM.
    use sharing_arch::core::Simulator;
    use sharing_arch::isa::CAPACITY_SCALE;
    use sharing_arch::trace::ReuseProfile;

    for bench in [Benchmark::Bzip, Benchmark::Gobmk, Benchmark::Omnetpp] {
        let trace = bench.generate(&TraceSpec::new(20_000, 9));
        let profile = ReuseProfile::of(&trace);

        let banks = 8usize; // 512 KB nominal
        let cfg = SimConfig::with_shape(1, banks).unwrap();
        let r = Simulator::new(cfg)
            .unwrap()
            .run_with(&trace, RunOptions::new())
            .result;
        let mem_ops = r.mem.l1d.accesses;
        let measured_coverage = 1.0 - r.mem.memory_accesses as f64 / mem_ops as f64;

        // Total modeled capacity: scaled L1D + scaled L2, in lines.
        let l1_lines = (16 << 10) / CAPACITY_SCALE / 64;
        let l2_lines = (banks as u64 * (64 << 10)) / CAPACITY_SCALE / 64;
        let predicted = profile.hit_rate(l1_lines + l2_lines);

        assert!(
            (measured_coverage - predicted).abs() < 0.25,
            "{bench}: measured DRAM-avoidance {measured_coverage:.2} vs analytic {predicted:.2}"
        );
    }
}
